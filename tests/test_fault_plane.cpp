// FaultPlane: partitions (two-way, one-way, scheduled heal), link faults,
// duplication, reordering, gray nodes, and the quiescence/clear_all barrier.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/fault_plane.h"
#include "net/message.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::net {
namespace {

struct CloneMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 2;
  explicit CloneMsg(int v) : Message(kType), value(v) {}
  int value;
  PGRID_MESSAGE_CLONE(CloneMsg)
};

/// Not cloneable: duplication must silently skip it.
struct PlainMsg final : Message {
  static constexpr std::uint16_t kType = kTagTestBase + 3;
  PlainMsg() : Message(kType) {}
};

struct Recorder final : MessageHandler {
  explicit Recorder(sim::Simulator& simulator) : sim(&simulator) {}
  void on_message(NodeAddr from, MessagePtr /*msg*/) override {
    froms.push_back(from);
    times.push_back(sim->now());
  }
  sim::Simulator* sim;
  std::vector<NodeAddr> froms;
  std::vector<sim::SimTime> times;
};

class FaultPlaneTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  LatencyModel latency{sim::SimTime::millis(10), sim::SimTime::millis(10)};
  Network net{simulator, Rng{7}, latency};
  Recorder a{simulator}, b{simulator}, c{simulator};
  NodeAddr addr_a = net.add_handler(&a);
  NodeAddr addr_b = net.add_handler(&b);
  NodeAddr addr_c = net.add_handler(&c);

  void send_ab(int n = 1) {
    for (int i = 0; i < n; ++i) {
      net.send(addr_a, addr_b, std::make_unique<CloneMsg>(i));
    }
  }
};

TEST_F(FaultPlaneTest, LazyCreation) {
  EXPECT_FALSE(net.has_fault_plane());
  static_cast<void>(net.fault_plane());
  EXPECT_TRUE(net.has_fault_plane());
  EXPECT_TRUE(net.fault_plane().quiescent());
}

TEST_F(FaultPlaneTest, PartitionBlocksBothDirections) {
  FaultPlane& fp = net.fault_plane();
  const auto id = fp.cut("split", {addr_a}, {addr_b});
  send_ab();
  net.send(addr_b, addr_a, std::make_unique<CloneMsg>(0));
  simulator.run();
  EXPECT_TRUE(b.froms.empty());
  EXPECT_TRUE(a.froms.empty());
  EXPECT_EQ(net.stats().messages_dropped_partition, 2u);
  EXPECT_TRUE(fp.partition_active(id));

  fp.heal(id);
  EXPECT_FALSE(fp.partition_active(id));
  send_ab();
  simulator.run();
  EXPECT_EQ(b.froms.size(), 1u);
}

TEST_F(FaultPlaneTest, OneWayCutIsAsymmetric) {
  FaultPlane& fp = net.fault_plane();
  fp.cut("oneway", {addr_a}, {addr_b}, /*one_way=*/true);
  send_ab();
  net.send(addr_b, addr_a, std::make_unique<CloneMsg>(0));
  simulator.run();
  EXPECT_TRUE(b.froms.empty());        // a -> b cut
  EXPECT_EQ(a.froms.size(), 1u);       // b -> a still flows
}

TEST_F(FaultPlaneTest, PartitionDoesNotAffectThirdParties) {
  net.fault_plane().cut("split", {addr_a}, {addr_b});
  net.send(addr_a, addr_c, std::make_unique<CloneMsg>(0));
  net.send(addr_c, addr_b, std::make_unique<CloneMsg>(0));
  simulator.run();
  EXPECT_EQ(c.froms.size(), 1u);
  EXPECT_EQ(b.froms.size(), 1u);
}

TEST_F(FaultPlaneTest, HealAfterReconnectsOnSchedule) {
  FaultPlane& fp = net.fault_plane();
  const auto id = fp.cut("timed", {addr_a}, {addr_b});
  fp.heal_after(id, sim::SimTime::seconds(5.0));
  send_ab();
  simulator.run_until(sim::SimTime::seconds(1.0));
  EXPECT_TRUE(b.froms.empty());
  simulator.run_until(sim::SimTime::seconds(6.0));
  EXPECT_FALSE(fp.partition_active(id));
  send_ab();
  simulator.run();
  EXPECT_EQ(b.froms.size(), 1u);
}

TEST_F(FaultPlaneTest, LinkFaultFullLossEatsEverything) {
  net.fault_plane().set_link(addr_a, addr_b, LinkFault{1.0, {}, {}});
  send_ab(20);
  simulator.run();
  EXPECT_TRUE(b.froms.empty());
  EXPECT_EQ(net.stats().messages_dropped_fault, 20u);

  net.fault_plane().clear_link(addr_a, addr_b);
  send_ab();
  simulator.run();
  EXPECT_EQ(b.froms.size(), 1u);
}

TEST_F(FaultPlaneTest, LinkExtraLatencyDelaysDelivery) {
  net.fault_plane().set_link(
      addr_a, addr_b,
      LinkFault{0.0, sim::SimTime::seconds(1.0), sim::SimTime::seconds(1.0)});
  send_ab();
  simulator.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_EQ(b.times[0], sim::SimTime::seconds(1.0) + sim::SimTime::millis(10));
}

TEST_F(FaultPlaneTest, DuplicationDeliversTwoCopies) {
  net.fault_plane().set_duplication(1.0);
  send_ab();
  simulator.run();
  EXPECT_EQ(b.froms.size(), 2u);
  EXPECT_EQ(net.stats().messages_duplicated, 1u);
  // Duplicated copies count as delivered: delivered exceeds sent.
  EXPECT_GT(net.stats().messages_delivered, net.stats().messages_sent);
}

TEST_F(FaultPlaneTest, DuplicationSkipsNonCloneableMessages) {
  net.fault_plane().set_duplication(1.0);
  net.send(addr_a, addr_b, std::make_unique<PlainMsg>());
  simulator.run();
  EXPECT_EQ(b.froms.size(), 1u);
  EXPECT_EQ(net.stats().messages_duplicated, 0u);
}

TEST_F(FaultPlaneTest, ReorderJitterCountsAndDelays) {
  net.fault_plane().set_reorder(1.0, sim::SimTime::seconds(2.0));
  send_ab(10);
  simulator.run();
  EXPECT_EQ(b.froms.size(), 10u);
  EXPECT_EQ(net.stats().messages_reordered, 10u);
  // With a 2 s jitter window over 10 ms base latency, arrival order is no
  // longer send order for at least one pair (overwhelmingly likely at p=1).
  bool delayed = false;
  for (const sim::SimTime t : b.times) {
    if (t > sim::SimTime::millis(10)) delayed = true;
  }
  EXPECT_TRUE(delayed);
}

TEST_F(FaultPlaneTest, GrayNodeSlowsTraffic) {
  net.fault_plane().set_gray(addr_b, GrayFault{100.0, 0.0});
  EXPECT_TRUE(net.fault_plane().is_gray(addr_b));
  send_ab();
  simulator.run();
  ASSERT_EQ(b.times.size(), 1u);
  // 10 ms base latency x100 = 1 s.
  EXPECT_EQ(b.times[0], sim::SimTime::seconds(1.0));

  net.fault_plane().clear_gray(addr_b);
  b.times.clear();
  send_ab();
  simulator.run();
  ASSERT_EQ(b.times.size(), 1u);
  // Back to plain base latency once the gray fault clears.
  EXPECT_EQ(b.times[0], sim::SimTime::seconds(1.0) + sim::SimTime::millis(10));
}

TEST_F(FaultPlaneTest, GrayLossDropsAsFault) {
  net.fault_plane().set_gray(addr_b, GrayFault{1.0, 1.0});
  send_ab(5);
  simulator.run();
  EXPECT_TRUE(b.froms.empty());
  EXPECT_EQ(net.stats().messages_dropped_fault, 5u);
}

TEST_F(FaultPlaneTest, CongestionAddsLossAndLatency) {
  net.fault_plane().set_congestion(1.0, 1.0);
  send_ab(3);
  simulator.run();
  EXPECT_TRUE(b.froms.empty());
  EXPECT_EQ(net.stats().messages_dropped_fault, 3u);
  net.fault_plane().clear_congestion();
  send_ab();
  simulator.run();
  EXPECT_EQ(b.froms.size(), 1u);
}

TEST_F(FaultPlaneTest, ClearAllRestoresQuiescence) {
  FaultPlane& fp = net.fault_plane();
  fp.cut("p", {addr_a}, {addr_b});
  fp.set_link(addr_b, addr_c, LinkFault{0.5, {}, {}});
  fp.set_congestion(0.1, 2.0);
  fp.set_duplication(0.5);
  fp.set_reorder(0.5, sim::SimTime::seconds(1.0));
  fp.set_gray(addr_c, GrayFault{});
  EXPECT_FALSE(fp.quiescent());
  fp.clear_all();
  EXPECT_TRUE(fp.quiescent());
  EXPECT_EQ(fp.active_partitions(), 0u);
  send_ab(10);
  simulator.run();
  EXPECT_EQ(b.froms.size(), 10u);
}

TEST_F(FaultPlaneTest, NoFaultPlaneKeepsDeterministicDelivery) {
  // Two identical networks, one of which instantiates (but never arms) a
  // fault plane: delivery times must match exactly — the lazy plane must
  // not perturb the base rng stream.
  sim::Simulator s1, s2;
  Network n1{s1, Rng{99}, latency, 0.2};
  Network n2{s2, Rng{99}, latency, 0.2};
  Recorder r1{s1}, r2{s2};
  const NodeAddr src1 = n1.add_handler(&r1);
  const NodeAddr dst1 = n1.add_handler(&r1);
  const NodeAddr src2 = n2.add_handler(&r2);
  const NodeAddr dst2 = n2.add_handler(&r2);
  static_cast<void>(n2.fault_plane());  // created, quiescent
  for (int i = 0; i < 50; ++i) {
    n1.send(src1, dst1, std::make_unique<CloneMsg>(i));
    n2.send(src2, dst2, std::make_unique<CloneMsg>(i));
  }
  s1.run();
  s2.run();
  ASSERT_EQ(r1.times.size(), r2.times.size());
  for (std::size_t i = 0; i < r1.times.size(); ++i) {
    EXPECT_EQ(r1.times[i], r2.times[i]);
  }
}

}  // namespace
}  // namespace pgrid::net
