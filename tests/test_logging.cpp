// Logger: a process-wide singleton shared by every sweep thread. Level and
// sink are atomics and the simulated-clock source is thread-local, so two
// simulators on two threads can log concurrently without racing each other
// or stamping lines with the wrong clock.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "sim/simulator.h"

namespace pgrid {
namespace {

std::vector<std::string> read_lines(std::FILE* f) {
  std::rewind(f);
  std::vector<std::string> lines;
  char buf[512];
  while (std::fgets(buf, sizeof buf, f) != nullptr) lines.emplace_back(buf);
  return lines;
}

TEST(Logging, TwoSimulatorsOnTwoThreadsKeepTheirOwnClocks) {
  Logger& log = Logger::instance();
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  log.set_sink(tmp);
  log.set_level(LogLevel::kInfo);

  // Each worker drives its own simulator and registers it as this thread's
  // time source; line i of module M must carry M's clock (i * step), never
  // the other thread's, no matter how the writes interleave in the sink.
  auto worker = [](const char* module, double step, int lines) {
    sim::Simulator sim;
    Logger::set_time_source([&sim] { return sim.now().sec(); });
    for (int i = 1; i <= lines; ++i) {
      sim.schedule_in(sim::SimTime::seconds(step), [module, i] {
        PGRID_INFO(module, "line %d", i);
      });
      sim.run();
    }
    Logger::set_time_source(nullptr);
  };
  std::thread ta(worker, "mod_a", 1.0, 40);
  std::thread tb(worker, "mod_b", 100.0, 40);
  ta.join();
  tb.join();
  log.set_sink(nullptr);
  log.set_level(LogLevel::kWarn);

  std::map<std::string, std::vector<double>> times;
  for (const std::string& line : read_lines(tmp)) {
    double t = -1.0;
    char module[32] = {};
    if (std::sscanf(line.c_str(), "[t=%lfs] [INFO] %31[^:]:", &t, module) == 2) {
      times[module].push_back(t);
    }
  }
  std::fclose(tmp);
  ASSERT_EQ(times["mod_a"].size(), 40u);
  ASSERT_EQ(times["mod_b"].size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(times["mod_a"][i], static_cast<double>(i + 1) * 1.0);
    EXPECT_DOUBLE_EQ(times["mod_b"][i], static_cast<double>(i + 1) * 100.0);
  }
}

TEST(Logging, LevelAndSinkChangesAreSafeUnderConcurrentLogging) {
  Logger& log = Logger::instance();
  std::FILE* tmp = std::tmpfile();
  ASSERT_NE(tmp, nullptr);
  log.set_sink(tmp);

  // One thread flips the level while others log: no torn reads, no crash,
  // and every line that does land is well-formed. (TSan builds verify the
  // absence of the pre-atomic data race.)
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 2000; ++i) {
      log.set_level((i % 2) != 0 ? LogLevel::kOff : LogLevel::kInfo);
    }
    stop.store(true);
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      while (!stop.load()) PGRID_INFO("race", "writer %d", w);
    });
  }
  toggler.join();
  for (std::thread& t : writers) t.join();
  log.set_sink(nullptr);
  log.set_level(LogLevel::kWarn);

  for (const std::string& line : read_lines(tmp)) {
    EXPECT_EQ(line.rfind("[INFO] race: writer ", 0), 0u) << line;
  }
  std::fclose(tmp);
}

}  // namespace
}  // namespace pgrid
