// Discrete-event core: ordering, cancellation, periodic tasks, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace pgrid::sim {
namespace {

TEST(SimTime, ArithmeticAndConversions) {
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::millis(3).ns(), 3'000'000);
  EXPECT_EQ((SimTime::seconds(1) + SimTime::millis(500)).sec(), 1.5);
  EXPECT_EQ((SimTime::seconds(2) - SimTime::seconds(1)).sec(), 1.0);
  EXPECT_EQ((SimTime::millis(10) * 3).ns(), SimTime::millis(30).ns());
  EXPECT_LT(SimTime::zero(), SimTime::nanos(1));
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  simulator.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  simulator.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), SimTime::seconds(3));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(SimTime::seconds(1), [&order, i] {
      order.push_back(i);
    });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator simulator;
  SimTime fired_at;
  simulator.schedule_at(SimTime::seconds(5), [&] {
    simulator.schedule_in(SimTime::seconds(2),
                          [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, SimTime::seconds(7));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id =
      simulator.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(simulator.pending(id));
  EXPECT_TRUE(simulator.cancel(id));
  EXPECT_FALSE(simulator.pending(id));
  EXPECT_FALSE(simulator.cancel(id));  // idempotent
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromWithinEarlierEvent) {
  Simulator simulator;
  bool fired = false;
  const EventId victim =
      simulator.schedule_at(SimTime::seconds(2), [&] { fired = true; });
  simulator.schedule_at(SimTime::seconds(1),
                        [&] { simulator.cancel(victim); });
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  simulator.schedule_at(SimTime::seconds(10), [&] { ++fired; });
  const auto executed = simulator.run_until(SimTime::seconds(5));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), SimTime::seconds(5));  // clock advances to horizon
  EXPECT_EQ(simulator.queued(), 1u);
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) simulator.schedule_in(SimTime::seconds(1), recurse);
  };
  simulator.schedule_in(SimTime::seconds(1), recurse);
  simulator.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(simulator.now(), SimTime::seconds(5));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.step());
  simulator.schedule_in(SimTime::seconds(1), [] {});
  EXPECT_TRUE(simulator.step());
  EXPECT_FALSE(simulator.step());
}

TEST(PeriodicTask, FiresAtFixedCadence) {
  Simulator simulator;
  std::vector<SimTime> fires;
  PeriodicTask task(simulator, SimTime::seconds(2),
                    [&] { fires.push_back(simulator.now()); });
  simulator.run_until(SimTime::seconds(7));
  // Initial delay 0: fires at t=0, 2, 4, 6.
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[0], SimTime::zero());
  EXPECT_EQ(fires[3], SimTime::seconds(6));
}

TEST(PeriodicTask, InitialDelayShiftsPhase) {
  Simulator simulator;
  std::vector<SimTime> fires;
  PeriodicTask task(simulator, SimTime::seconds(2),
                    [&] { fires.push_back(simulator.now()); },
                    SimTime::seconds(1));
  simulator.run_until(SimTime::seconds(6));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], SimTime::seconds(1));
  EXPECT_EQ(fires[2], SimTime::seconds(5));
}

TEST(PeriodicTask, StopHaltsAndDestructorCleansUp) {
  Simulator simulator;
  int count = 0;
  {
    PeriodicTask task(simulator, SimTime::seconds(1), [&] { ++count; });
    simulator.run_until(SimTime::seconds(2));
    EXPECT_EQ(count, 3);  // t = 0, 1, 2
    task.stop();
    EXPECT_FALSE(task.running());
    simulator.run_until(SimTime::seconds(5));
    EXPECT_EQ(count, 3);
  }
  // Destroyed task leaves no live events behind.
  simulator.run();
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, StoppingFromInsideCallback) {
  Simulator simulator;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(simulator, SimTime::seconds(1), [&] {
    if (++count == 3) handle->stop();
  });
  handle = &task;
  simulator.run();
  EXPECT_EQ(count, 3);
}

// Regression for the tombstone leak: before compaction, N cancelled
// far-future events (one per successful call_retry attempt) kept the heap at
// size N until their deadlines popped. Compaction must bound the heap at
// O(live events), and the live/tombstone counters must always reconcile with
// the heap size.
TEST(Simulator, CancelledFarFutureEventsDoNotBloatHeap) {
  Simulator simulator;
  constexpr int kCancelled = 100'000;
  std::size_t heap_peak = 0;
  // Mimic an RPC-heavy run: each iteration schedules a far-future timeout
  // (the RTO) and immediately cancels it (the reply arrived).
  for (int i = 0; i < kCancelled; ++i) {
    const EventId timeout =
        simulator.schedule_in(SimTime::seconds(3600), [] {});
    EXPECT_TRUE(simulator.cancel(timeout));
    heap_peak = std::max(heap_peak, simulator.heap_size());
    // Invariant: every heap entry is either live or a counted tombstone.
    ASSERT_EQ(simulator.queued() + simulator.tombstones(),
              simulator.heap_size());
  }
  EXPECT_EQ(simulator.queued(), 0u);
  // With zero live events, compaction fires as soon as tombstones pass the
  // floor, so the heap never accumulates anywhere near kCancelled entries.
  EXPECT_LT(heap_peak, 256u);
  EXPECT_LT(simulator.heap_size(), 256u);
  EXPECT_GT(simulator.compactions(), 0u);
  EXPECT_GE(simulator.tombstone_high_water(), 64u);
}

TEST(Simulator, CompactionKeepsHeapProportionalToLiveEvents) {
  Simulator simulator;
  // A realistic mix: 1000 live far-future events plus a cancel churn.
  std::vector<EventId> live;
  for (int i = 0; i < 1000; ++i) {
    live.push_back(simulator.schedule_in(SimTime::seconds(7200 + i), [] {}));
  }
  for (int i = 0; i < 50'000; ++i) {
    simulator.cancel(simulator.schedule_in(SimTime::seconds(3600), [] {}));
  }
  EXPECT_EQ(simulator.queued(), 1000u);
  // Tombstones can linger only while they do not outnumber live events.
  EXPECT_LE(simulator.heap_size(), 2 * 1000u + 1);
  for (EventId id : live) EXPECT_TRUE(simulator.cancel(id));
}

TEST(Simulator, StaleHandleAfterSlotReuseIsInert) {
  Simulator simulator;
  bool second_fired = false;
  const EventId first = simulator.schedule_in(SimTime::seconds(1), [] {});
  ASSERT_TRUE(simulator.cancel(first));
  // The freed slot is recycled for a new event; the stale handle must not
  // alias it.
  const EventId second =
      simulator.schedule_in(SimTime::seconds(2), [&] { second_fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(simulator.pending(first));
  EXPECT_FALSE(simulator.cancel(first));  // stale: no-op
  EXPECT_TRUE(simulator.pending(second));
  simulator.run();
  EXPECT_TRUE(second_fired);
}

TEST(Simulator, MoveOnlyCallbackCaptures) {
  // SmallFn accepts move-only captures; std::function could not. This is
  // what lets the network move MessagePtr payloads straight through
  // delivery events without boxing.
  Simulator simulator;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  simulator.schedule_in(SimTime::seconds(1),
                        [p = std::move(payload), &seen] { seen = *p; });
  simulator.run();
  EXPECT_EQ(seen, 42);
}

TEST(Simulator, LargeCaptureSpillsToHeapCorrectly) {
  Simulator simulator;
  std::array<std::uint64_t, 32> big{};  // 256 bytes: exceeds inline budget
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
  std::uint64_t sum = 0;
  simulator.schedule_in(SimTime::seconds(1), [big, &sum] {
    for (auto v : big) sum += v;
  });
  simulator.run();
  EXPECT_EQ(sum, 496u);
}

// Determinism contract across compaction: a run whose cancel pattern forces
// heap rebuilds must produce the bit-identical event ordering, timestamps,
// and executed count as the same schedule replayed without ever compacting
// (tombstones below the floor). Compaction only discards dead entries.
TEST(Simulator, CompactionPreservesEventOrdering) {
  // cancel_batch == 0 keeps tombstones under the compaction floor.
  auto run_once = [](int cancel_batch) {
    Simulator simulator;
    std::vector<std::pair<std::int64_t, int>> trace;
    std::uint64_t compactions_seen = 0;
    for (int i = 0; i < 500; ++i) {
      simulator.schedule_at(SimTime::millis((i * 37) % 1000), [&, i] {
        trace.emplace_back(simulator.now().ns(), i);
        // Churn cancels from inside events to exercise mid-run compaction.
        for (int j = 0; j < cancel_batch; ++j) {
          simulator.cancel(
              simulator.schedule_in(SimTime::seconds(900), [] {}));
        }
        compactions_seen = simulator.compactions();
      });
    }
    simulator.run();
    return std::make_pair(trace, compactions_seen);
  };
  const auto [quiet_trace, quiet_compactions] = run_once(0);
  const auto [churn_trace, churn_compactions] = run_once(40);
  EXPECT_EQ(quiet_compactions, 0u);
  EXPECT_GT(churn_compactions, 0u);
  EXPECT_EQ(quiet_trace, churn_trace);
}

TEST(Simulator, DeterministicReplay) {
  auto run_once = [] {
    Simulator simulator;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      simulator.schedule_at(SimTime::millis((i * 37) % 100), [&trace, i] {
        trace.push_back(i);
      });
    }
    simulator.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pgrid::sim
