// Discrete-event core: ordering, cancellation, periodic tasks, determinism.

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace pgrid::sim {
namespace {

TEST(SimTime, ArithmeticAndConversions) {
  EXPECT_EQ(SimTime::seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::millis(3).ns(), 3'000'000);
  EXPECT_EQ((SimTime::seconds(1) + SimTime::millis(500)).sec(), 1.5);
  EXPECT_EQ((SimTime::seconds(2) - SimTime::seconds(1)).sec(), 1.0);
  EXPECT_EQ((SimTime::millis(10) * 3).ns(), SimTime::millis(30).ns());
  EXPECT_LT(SimTime::zero(), SimTime::nanos(1));
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.schedule_at(SimTime::seconds(3), [&] { order.push_back(3); });
  simulator.schedule_at(SimTime::seconds(1), [&] { order.push_back(1); });
  simulator.schedule_at(SimTime::seconds(2), [&] { order.push_back(2); });
  simulator.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), SimTime::seconds(3));
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.schedule_at(SimTime::seconds(1), [&order, i] {
      order.push_back(i);
    });
  }
  simulator.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator simulator;
  SimTime fired_at;
  simulator.schedule_at(SimTime::seconds(5), [&] {
    simulator.schedule_in(SimTime::seconds(2),
                          [&] { fired_at = simulator.now(); });
  });
  simulator.run();
  EXPECT_EQ(fired_at, SimTime::seconds(7));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator simulator;
  bool fired = false;
  const EventId id =
      simulator.schedule_at(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(simulator.pending(id));
  EXPECT_TRUE(simulator.cancel(id));
  EXPECT_FALSE(simulator.pending(id));
  EXPECT_FALSE(simulator.cancel(id));  // idempotent
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelFromWithinEarlierEvent) {
  Simulator simulator;
  bool fired = false;
  const EventId victim =
      simulator.schedule_at(SimTime::seconds(2), [&] { fired = true; });
  simulator.schedule_at(SimTime::seconds(1),
                        [&] { simulator.cancel(victim); });
  simulator.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator simulator;
  int fired = 0;
  simulator.schedule_at(SimTime::seconds(1), [&] { ++fired; });
  simulator.schedule_at(SimTime::seconds(10), [&] { ++fired; });
  const auto executed = simulator.run_until(SimTime::seconds(5));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.now(), SimTime::seconds(5));  // clock advances to horizon
  EXPECT_EQ(simulator.queued(), 1u);
  simulator.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) simulator.schedule_in(SimTime::seconds(1), recurse);
  };
  simulator.schedule_in(SimTime::seconds(1), recurse);
  simulator.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(simulator.now(), SimTime::seconds(5));
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator simulator;
  EXPECT_FALSE(simulator.step());
  simulator.schedule_in(SimTime::seconds(1), [] {});
  EXPECT_TRUE(simulator.step());
  EXPECT_FALSE(simulator.step());
}

TEST(PeriodicTask, FiresAtFixedCadence) {
  Simulator simulator;
  std::vector<SimTime> fires;
  PeriodicTask task(simulator, SimTime::seconds(2),
                    [&] { fires.push_back(simulator.now()); });
  simulator.run_until(SimTime::seconds(7));
  // Initial delay 0: fires at t=0, 2, 4, 6.
  ASSERT_EQ(fires.size(), 4u);
  EXPECT_EQ(fires[0], SimTime::zero());
  EXPECT_EQ(fires[3], SimTime::seconds(6));
}

TEST(PeriodicTask, InitialDelayShiftsPhase) {
  Simulator simulator;
  std::vector<SimTime> fires;
  PeriodicTask task(simulator, SimTime::seconds(2),
                    [&] { fires.push_back(simulator.now()); },
                    SimTime::seconds(1));
  simulator.run_until(SimTime::seconds(6));
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], SimTime::seconds(1));
  EXPECT_EQ(fires[2], SimTime::seconds(5));
}

TEST(PeriodicTask, StopHaltsAndDestructorCleansUp) {
  Simulator simulator;
  int count = 0;
  {
    PeriodicTask task(simulator, SimTime::seconds(1), [&] { ++count; });
    simulator.run_until(SimTime::seconds(2));
    EXPECT_EQ(count, 3);  // t = 0, 1, 2
    task.stop();
    EXPECT_FALSE(task.running());
    simulator.run_until(SimTime::seconds(5));
    EXPECT_EQ(count, 3);
  }
  // Destroyed task leaves no live events behind.
  simulator.run();
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTask, StoppingFromInsideCallback) {
  Simulator simulator;
  int count = 0;
  PeriodicTask* handle = nullptr;
  PeriodicTask task(simulator, SimTime::seconds(1), [&] {
    if (++count == 3) handle->stop();
  });
  handle = &task;
  simulator.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, DeterministicReplay) {
  auto run_once = [] {
    Simulator simulator;
    std::vector<std::int64_t> trace;
    for (int i = 0; i < 50; ++i) {
      simulator.schedule_at(SimTime::millis((i * 37) % 100), [&trace, i] {
        trace.push_back(i);
      });
    }
    simulator.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace pgrid::sim
