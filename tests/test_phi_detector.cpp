// φ-accrual failure detector: threshold calibration against the legacy
// fixed deadline, adaptation to learned inter-arrival gaps, monotone
// suspicion growth, and the suspect/evict two-level contract.

#include <gtest/gtest.h>

#include "common/phi_detector.h"

namespace pgrid {
namespace {

using sim::SimTime;

SimTime at(double sec) { return SimTime::seconds(sec); }

TEST(PhiDetector, SilentBeforeFirstHeartbeat) {
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  EXPECT_FALSE(d.seen());
  EXPECT_EQ(d.phi(at(100.0), cfg, at(15.0)), 0.0);
  EXPECT_FALSE(d.suspect(at(100.0), cfg, at(15.0)));
  EXPECT_FALSE(d.evict(at(100.0), cfg, at(15.0)));
}

TEST(PhiDetector, RampCrossesEvictExactlyAtLegacyDeadline) {
  // With fewer than min_samples gaps the detector must judge by the old
  // rule: a fresh peer that goes silent is evicted at the caller's fixed
  // deadline, no sooner and no later.
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  const SimTime deadline = at(15.0);  // e.g. 5 s period x 3 misses
  d.heartbeat(at(0.0));
  ASSERT_LT(d.samples(), cfg.min_samples);
  EXPECT_FALSE(d.evict(at(14.9), cfg, deadline));
  EXPECT_TRUE(d.evict(at(15.0), cfg, deadline));
  // The ramp is linear: the suspect level (2/3 of evict) fires at 10 s.
  EXPECT_FALSE(d.suspect(at(9.9), cfg, deadline));
  EXPECT_TRUE(d.suspect(at(10.0), cfg, deadline));
}

TEST(PhiDetector, LearnedSlowPeerIsNotEvictedAtTheFixedDeadline) {
  // A peer whose heartbeats arrive every 10 s (congested, gray — but alive)
  // would be evicted by a fixed 15 s deadline. Once the detector has
  // learned the 10 s gap distribution, 15 s of silence is only ~1.5 gaps:
  // far below the eviction threshold.
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  double t = 0.0;
  for (int i = 0; i < 8; ++i, t += 10.0) d.heartbeat(at(t));
  ASSERT_GE(d.samples(), cfg.min_samples);
  const SimTime last = at(t - 10.0);
  EXPECT_FALSE(d.evict(last + at(15.0), cfg, at(15.0)));
  EXPECT_FALSE(d.suspect(last + at(15.0), cfg, at(15.0)));
  // A genuinely dead peer still gets detected: phi grows without bound.
  EXPECT_TRUE(d.evict(last + at(40.0), cfg, at(15.0)));
}

TEST(PhiDetector, FastPeerEvictsNearThreeLearnedGaps) {
  // Metronome 1 s heartbeats: the stdev floor (0.05 s) keeps the scale at
  // 1.05 s, so eviction fires a hair past 3 learned gaps — the same
  // latency contract as the legacy 3-period rule, but in learned units.
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  double t = 0.0;
  for (int i = 0; i < 10; ++i, t += 1.0) d.heartbeat(at(t));
  const SimTime last = at(t - 1.0);
  EXPECT_FALSE(d.evict(last + at(3.0), cfg, at(15.0)));
  EXPECT_TRUE(d.evict(last + at(3.2), cfg, at(15.0)));
}

TEST(PhiDetector, PhiIsMonotoneDuringSilence) {
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  double t = 0.0;
  for (int i = 0; i < 6; ++i, t += 2.0) d.heartbeat(at(t));
  const SimTime last = at(t - 2.0);
  double prev = -1.0;
  for (double s = 0.5; s <= 30.0; s += 0.5) {
    const double phi = d.phi(last + at(s), cfg, at(15.0));
    EXPECT_GE(phi, prev) << "phi decreased at silence " << s;
    prev = phi;
  }
}

TEST(PhiDetector, SuspectFiresBeforeEvict) {
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  double t = 0.0;
  for (int i = 0; i < 8; ++i, t += 5.0) d.heartbeat(at(t));
  const SimTime last = at(t - 5.0);
  bool saw_suspect_only = false;
  for (double s = 1.0; s <= 60.0; s += 1.0) {
    const bool sus = d.suspect(last + at(s), cfg, at(15.0));
    const bool ev = d.evict(last + at(s), cfg, at(15.0));
    EXPECT_TRUE(!ev || sus) << "evict without suspect at " << s;
    if (sus && !ev) saw_suspect_only = true;
  }
  EXPECT_TRUE(saw_suspect_only)
      << "no window where the cheap refresh action fires before eviction";
}

TEST(PhiDetector, HeartbeatResetsSuspicion) {
  PhiDetector d;
  const PhiAccrualConfig cfg{.enabled = true};
  double t = 0.0;
  for (int i = 0; i < 8; ++i, t += 2.0) d.heartbeat(at(t));
  const SimTime last = at(t - 2.0);
  ASSERT_TRUE(d.evict(last + at(20.0), cfg, at(15.0)));
  // Proof of life: suspicion collapses back to zero silence.
  d.heartbeat(last + at(20.0));
  EXPECT_FALSE(d.suspect(last + at(20.5), cfg, at(15.0)));
}

TEST(PhiDetector, ResetForgetsHistory) {
  PhiDetector d;
  double t = 0.0;
  for (int i = 0; i < 8; ++i, t += 1.0) d.heartbeat(at(t));
  ASSERT_TRUE(d.seen());
  ASSERT_GT(d.samples(), 0u);
  d.reset();
  EXPECT_FALSE(d.seen());
  EXPECT_EQ(d.samples(), 0u);
  const PhiAccrualConfig cfg{.enabled = true};
  EXPECT_EQ(d.phi(at(1000.0), cfg, at(15.0)), 0.0);
}

}  // namespace
}  // namespace pgrid
