// Resource model: constraints, ladder normalization, overlay conversions.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "grid/resources.h"

namespace pgrid::grid {
namespace {

TEST(ResourceVector, Accessors) {
  const ResourceVector caps{{2.5, 4.0, 100.0}};
  EXPECT_DOUBLE_EQ(caps.cpu(), 2.5);
  EXPECT_DOUBLE_EQ(caps.memory(), 4.0);
  EXPECT_DOUBLE_EQ(caps.disk(), 100.0);
  EXPECT_NE(caps.str().find("cpu=2.5"), std::string::npos);
}

TEST(Constraints, SatisfactionAndCount) {
  Constraints c;
  c.active[0] = true;
  c.min[0] = 2.0;
  c.active[2] = true;
  c.min[2] = 100.0;
  EXPECT_EQ(c.count(), 2u);
  EXPECT_TRUE(c.satisfied_by(ResourceVector{{2.0, 0.5, 100.0}}));
  EXPECT_FALSE(c.satisfied_by(ResourceVector{{1.5, 16.0, 500.0}}));
  EXPECT_FALSE(c.satisfied_by(ResourceVector{{4.0, 16.0, 50.0}}));
  const Constraints free;  // unconstrained job runs anywhere
  EXPECT_EQ(free.count(), 0u);
  EXPECT_TRUE(free.satisfied_by(ResourceVector{{1.0, 0.5, 20.0}}));
}

TEST(ResourceLadder, LaddersAreSortedAndDistinct) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto& ladder = ResourceLadder::values(r);
    ASSERT_GE(ladder.size(), 2u);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_LT(ladder[i - 1], ladder[i]);
    }
  }
}

TEST(ResourceLadder, ToUnitIsMonotoneAndConsistent) {
  // The key matchmaking property: v >= c in real units iff
  // unit(v) >= unit(c) for on-ladder values.
  for (std::size_t r = 0; r < kNumResources; ++r) {
    const auto& ladder = ResourceLadder::values(r);
    for (double v : ladder) {
      for (double c : ladder) {
        EXPECT_EQ(v >= c,
                  ResourceLadder::to_unit(r, v) >= ResourceLadder::to_unit(r, c))
            << "r=" << r << " v=" << v << " c=" << c;
      }
    }
  }
}

TEST(ResourceLadder, UnitsStayInHalfOpenInterval) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    for (double v : ResourceLadder::values(r)) {
      const double u = ResourceLadder::to_unit(r, v);
      EXPECT_GE(u, 0.0);
      EXPECT_LT(u, 1.0);
    }
    EXPECT_GE(ResourceLadder::to_unit(r, 0.0), 0.0);
    EXPECT_LT(ResourceLadder::to_unit(r, 1e9), 1.0);
  }
}

TEST(ResourceLadder, FromUnitRoundTripsOntoLadder) {
  for (std::size_t r = 0; r < kNumResources; ++r) {
    for (double v : ResourceLadder::values(r)) {
      EXPECT_DOUBLE_EQ(ResourceLadder::from_unit(r, ResourceLadder::to_unit(r, v)),
                       v);
    }
  }
}

TEST(Conversions, RnQueryMirrorsConstraints) {
  Constraints c;
  c.active[1] = true;
  c.min[1] = 4.0;
  const rntree::Query q = to_rn_query(c);
  EXPECT_TRUE(q.constrained[1]);
  EXPECT_FALSE(q.constrained[0]);
  EXPECT_DOUBLE_EQ(q.min[1], 4.0);
  // Node caps convert compatibly.
  const ResourceVector yes{{1.0, 8.0, 20.0}};
  const ResourceVector no{{4.0, 2.0, 500.0}};
  EXPECT_TRUE(q.satisfied_by(to_rn_caps(yes)));
  EXPECT_FALSE(q.satisfied_by(to_rn_caps(no)));
}

TEST(Conversions, CanPointsAgreeWithRealSatisfaction) {
  // Normalized-space checks must agree with real-unit checks for any
  // ladder-valued capabilities/constraints.
  Rng rng{5};
  for (int trial = 0; trial < 500; ++trial) {
    ResourceVector caps;
    Constraints c;
    for (std::size_t r = 0; r < kNumResources; ++r) {
      const auto& ladder = ResourceLadder::values(r);
      caps.v[r] = ladder[rng.index(ladder.size())];
      if (rng.bernoulli(0.5)) {
        c.active[r] = true;
        c.min[r] = ladder[rng.index(ladder.size())];
      }
    }
    const can::Point node_pt = to_can_point(caps, 0.5);
    const can::Point job_pt = to_can_point(c, 0.25);
    EXPECT_EQ(c.satisfied_by(caps), can_point_satisfies(node_pt, job_pt, c));
  }
}

TEST(Conversions, UnconstrainedJobMapsToOrigin) {
  const Constraints free;
  const can::Point p = to_can_point(free, 0.7);
  for (std::size_t r = 0; r < kNumResources; ++r) {
    EXPECT_DOUBLE_EQ(p[r], 0.0);
  }
  EXPECT_DOUBLE_EQ(p[kVirtualDim], 0.7);
  EXPECT_EQ(p.dims(), kCanDims);
}

}  // namespace
}  // namespace pgrid::grid
