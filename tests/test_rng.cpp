// RNG determinism and distribution sanity. Reproducibility of the whole
// evaluation pipeline rests on these properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace pgrid {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent1{7}, parent2{7};
  Rng childa = parent1.fork(3);
  Rng childb = parent2.fork(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(childa.next(), childb.next());
  }
  Rng other = parent1.fork(4);
  EXPECT_NE(childa.next(), other.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{9};
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng{11};
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    ++counts[rng.below(7)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 9300);
    EXPECT_LT(c, 10700);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng{12};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{13};
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(100.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 100.0, 2.0);
}

TEST(Rng, PoissonMeanAndVarianceMatch) {
  Rng rng{14};
  RunningStats small_mean, large_mean;
  // Knuth path (mean < 64) and normal-approximation path (mean >= 64).
  for (int i = 0; i < 50000; ++i) {
    small_mean.add(static_cast<double>(rng.poisson(3.5)));
    large_mean.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(small_mean.mean(), 3.5, 0.1);
  EXPECT_NEAR(small_mean.variance(), 3.5, 0.2);
  EXPECT_NEAR(large_mean.mean(), 200.0, 1.0);
  EXPECT_NEAR(large_mean.variance(), 200.0, 10.0);
}

TEST(Rng, NormalMoments) {
  Rng rng{15};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stdev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{16};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng{17};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(ZipfDistribution, SkewZeroIsUniform) {
  Rng rng{18};
  ZipfDistribution zipf(4, 0.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 40000; ++i) {
    const auto r = zipf.sample(rng);
    ASSERT_GE(r, 1u);
    ASSERT_LE(r, 4u);
    ++counts[r];
  }
  for (int k = 1; k <= 4; ++k) {
    EXPECT_NEAR(counts[k] / 40000.0, 0.25, 0.02);
  }
}

TEST(ZipfDistribution, SkewedFavorsLowRanks) {
  Rng rng{19};
  ZipfDistribution zipf(100, 1.2);
  int rank1 = 0, rank100 = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto r = zipf.sample(rng);
    if (r == 1) ++rank1;
    if (r == 100) ++rank100;
  }
  EXPECT_GT(rank1, 50 * rank100);
}

TEST(DiscreteDistribution, MatchesWeights) {
  Rng rng{20};
  DiscreteDistribution dist({1.0, 0.0, 3.0});
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[dist.sample(rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

}  // namespace
}  // namespace pgrid
