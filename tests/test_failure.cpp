// Failure injector: crash/recover scheduling, eligibility, forced events.

#include <gtest/gtest.h>

#include <set>

#include "sim/failure.h"

namespace pgrid::sim {
namespace {

TEST(FailureInjector, NoLifetimeMeansNoCrashes) {
  Simulator simulator;
  ChurnModel model;  // mean_lifetime_sec == 0 disables
  int crashes = 0;
  FailureInjector injector(simulator, Rng{1}, model, 10,
                           [&](std::size_t) { ++crashes; }, nullptr);
  injector.start();
  simulator.run_until(SimTime::seconds(1000));
  EXPECT_EQ(crashes, 0);
  EXPECT_EQ(injector.crashes(), 0u);
}

TEST(FailureInjector, CrashesArriveAtRoughlyExpectedRate) {
  Simulator simulator;
  ChurnModel model;
  model.mean_lifetime_sec = 100.0;
  model.mean_downtime_sec = 0.0;  // crashed nodes stay down
  int crashes = 0;
  FailureInjector injector(simulator, Rng{2}, model, 1000,
                           [&](std::size_t) { ++crashes; }, nullptr);
  injector.start();
  simulator.run_until(SimTime::seconds(50));
  // P(crash by t=50 | mean 100) = 1 - e^-0.5 ~= 0.39.
  EXPECT_GT(crashes, 300);
  EXPECT_LT(crashes, 480);
  // With no recovery each member crashes at most once.
  EXPECT_LE(crashes, 1000);
}

TEST(FailureInjector, RecoveryBringsMembersBack) {
  Simulator simulator;
  ChurnModel model;
  model.mean_lifetime_sec = 10.0;
  model.mean_downtime_sec = 5.0;
  std::set<std::size_t> down;
  FailureInjector injector(
      simulator, Rng{3}, model, 50,
      [&](std::size_t m) { down.insert(m); },
      [&](std::size_t m) { down.erase(m); });
  injector.start();
  simulator.run_until(SimTime::seconds(500));
  EXPECT_GT(injector.crashes(), 100u);
  EXPECT_GT(injector.recoveries(), 100u);
  // Every currently-down member agrees with the injector's view.
  for (std::size_t m = 0; m < 50; ++m) {
    EXPECT_EQ(injector.is_up(m), down.count(m) == 0) << m;
  }
}

TEST(FailureInjector, ChurnFractionLimitsEligibility) {
  Simulator simulator;
  ChurnModel model;
  model.mean_lifetime_sec = 1.0;  // aggressive: eligible members crash fast
  model.churn_fraction = 0.0;     // ...but nobody is eligible
  int crashes = 0;
  FailureInjector injector(simulator, Rng{4}, model, 100,
                           [&](std::size_t) { ++crashes; }, nullptr);
  injector.start();
  simulator.run_until(SimTime::seconds(100));
  EXPECT_EQ(crashes, 0);
}

TEST(FailureInjector, StopAfterCutsOffInjection) {
  Simulator simulator;
  ChurnModel model;
  model.mean_lifetime_sec = 10.0;
  model.mean_downtime_sec = 1.0;
  model.stop_after_sec = 20.0;
  FailureInjector injector(simulator, Rng{5}, model, 200,
                           [](std::size_t) {}, [](std::size_t) {});
  injector.start();
  simulator.run_until(SimTime::seconds(20));
  const auto crashes_at_cutoff = injector.crashes();
  simulator.run_until(SimTime::seconds(400));
  EXPECT_EQ(injector.crashes(), crashes_at_cutoff);
}

TEST(FailureInjector, ForcedCrashAndRecoverAreIdempotent) {
  Simulator simulator;
  ChurnModel model;
  int crashes = 0, recoveries = 0;
  FailureInjector injector(simulator, Rng{6}, model, 3,
                           [&](std::size_t) { ++crashes; },
                           [&](std::size_t) { ++recoveries; });
  injector.crash_now(1);
  injector.crash_now(1);  // no-op: already down
  EXPECT_FALSE(injector.is_up(1));
  EXPECT_EQ(crashes, 1);
  injector.recover_now(1);
  injector.recover_now(1);  // no-op: already up
  EXPECT_TRUE(injector.is_up(1));
  EXPECT_EQ(recoveries, 1);
}

TEST(FailureInjector, StopCancelsPendingEvents) {
  Simulator simulator;
  ChurnModel model;
  model.mean_lifetime_sec = 50.0;
  int crashes = 0;
  FailureInjector injector(simulator, Rng{7}, model, 100,
                           [&](std::size_t) { ++crashes; }, nullptr);
  injector.start();
  injector.stop();
  simulator.run_until(SimTime::seconds(10000));
  EXPECT_EQ(crashes, 0);
}

}  // namespace
}  // namespace pgrid::sim
