// Causal tracing, metrics registry, and memory accounting: span-tree
// propagation across nodes, ring-wraparound drop accounting across both
// exporters, sampling determinism, registry instruments, and the
// per-subsystem MemoryAccountant.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "grid/grid_system.h"
#include "obs/memory.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace pgrid::obs {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Extract the integer following `"key":` in `text` (first occurrence).
std::uint64_t json_uint(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return ~std::uint64_t{0};
  return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
}

// --- satellite: ring wraparound drop accounting ---------------------------

TEST(TraceBusWraparound, DroppedCountConsistentAcrossExporters) {
  sim::Simulator simulator;
  TraceBus bus(simulator, 8);  // tiny ring: force overwrites
  for (std::uint64_t i = 0; i < 30; ++i) {
    bus.record(EventKind::kMsgSend, 0, 1, 7, i);
  }
  ASSERT_EQ(bus.size(), 8u);
  ASSERT_EQ(bus.total_recorded(), 30u);
  ASSERT_EQ(bus.dropped(), 22u);

  const std::string jsonl = testing::TempDir() + "/p2pgrid_wrap.jsonl";
  const std::string chrome = testing::TempDir() + "/p2pgrid_wrap.json";
  ASSERT_TRUE(bus.export_jsonl(jsonl));
  ASSERT_TRUE(bus.export_chrome_trace(chrome));
  const std::string jsonl_text = slurp(jsonl);
  const std::string chrome_text = slurp(chrome);
  std::remove(jsonl.c_str());
  std::remove(chrome.c_str());

  // The JSONL trailing summary line and the Chrome otherData block must
  // agree with the ring's own accounting.
  const auto summary_pos = jsonl_text.rfind("\"summary\":true");
  ASSERT_NE(summary_pos, std::string::npos);
  const std::string summary = jsonl_text.substr(summary_pos);
  EXPECT_EQ(json_uint(summary, "recorded"), 30u);
  EXPECT_EQ(json_uint(summary, "retained"), 8u);
  EXPECT_EQ(json_uint(summary, "dropped"), 22u);
  EXPECT_EQ(json_uint(chrome_text, "dropped_events"), 22u);
  // Retained events are the newest ones, oldest first.
  EXPECT_EQ(bus.at(0).a, 22u);
  EXPECT_EQ(bus.at(bus.size() - 1).a, 29u);
}

// --- tentpole: cross-node span trees --------------------------------------

grid::GridConfig traced_config(std::uint64_t sample_every) {
  grid::GridConfig config;
  config.kind = grid::MatchmakerKind::kRnTree;
  config.light_maintenance = true;
  config.obs.trace = true;
  config.obs.trace_capacity = 1u << 18;
  config.obs.trace_sample_every = sample_every;
  return config;
}

workload::WorkloadSpec small_spec(std::uint64_t seed) {
  workload::WorkloadSpec spec;
  spec.node_count = 16;
  spec.job_count = 24;
  spec.mean_runtime_sec = 5.0;
  spec.mean_interarrival_sec = 0.5;
  spec.seed = seed;
  return spec;
}

TEST(CausalTracing, SampledJobsProduceCrossNodeSpanTrees) {
#ifdef PGRID_OBS_DISABLED
  GTEST_SKIP() << "observability call sites compiled out";
#endif
  grid::GridSystem system(traced_config(4), workload::generate(small_spec(7)));
  system.run();
  TraceBus* bus = system.trace_bus();
  ASSERT_NE(bus, nullptr);

  // Collect span begin/end events, grouped by trace.
  struct Span {
    std::uint32_t parent = 0;
    std::uint32_t node = kNoActor;
    bool begun = false;
    bool ended = false;
  };
  std::map<std::uint64_t, std::map<std::uint32_t, Span>> traces;
  for (std::size_t i = 0; i < bus->size(); ++i) {
    const TraceEvent& e = bus->at(i);
    if (e.kind != EventKind::kSpanBegin && e.kind != EventKind::kSpanEnd) {
      continue;
    }
    ASSERT_NE(e.trace_id, 0u);
    Span& s = traces[e.trace_id][e.span];
    if (e.kind == EventKind::kSpanBegin) {
      s.begun = true;
      s.parent = e.parent;
      s.node = e.node;
    } else {
      s.ended = true;
    }
  }
  // 24 jobs sampled 1-in-4: six root traces.
  ASSERT_EQ(traces.size(), 6u);
  ASSERT_EQ(bus->traces_started(), 6u);

  for (const auto& [trace_id, spans] : traces) {
    // Exactly one root span; every other span's parent is in the same trace.
    std::size_t roots = 0;
    std::set<std::uint32_t> nodes;
    for (const auto& [span_id, s] : spans) {
      EXPECT_TRUE(s.begun) << "trace " << trace_id << " span " << span_id;
      if (s.parent == 0) {
        ++roots;
      } else {
        EXPECT_EQ(spans.count(s.parent), 1u)
            << "trace " << trace_id << " span " << span_id
            << " has orphan parent " << s.parent;
      }
      if (s.node != kNoActor) nodes.insert(s.node);
    }
    EXPECT_EQ(roots, 1u) << "trace " << trace_id;
    // Matchmaking + dispatch + result legs hop across nodes: the tree must
    // span more than one actor, and more than just the root request span.
    EXPECT_GT(spans.size(), 1u) << "trace " << trace_id;
    EXPECT_GT(nodes.size(), 1u) << "trace " << trace_id;
  }

  // Non-span events recorded under an active span carry its trace id.
  bool attributed = false;
  for (std::size_t i = 0; i < bus->size(); ++i) {
    const TraceEvent& e = bus->at(i);
    if (e.kind != EventKind::kSpanBegin && e.kind != EventKind::kSpanEnd &&
        e.trace_id != 0) {
      attributed = true;
      EXPECT_EQ(traces.count(e.trace_id), 1u);
    }
  }
  EXPECT_TRUE(attributed);
}

TEST(CausalTracing, SamplingOffLeavesNoSpans) {
  grid::GridSystem system(traced_config(0), workload::generate(small_spec(7)));
  system.run();
  TraceBus* bus = system.trace_bus();
  ASSERT_NE(bus, nullptr);
  for (std::size_t i = 0; i < bus->size(); ++i) {
    const TraceEvent& e = bus->at(i);
    EXPECT_NE(e.kind, EventKind::kSpanBegin);
    EXPECT_NE(e.kind, EventKind::kSpanEnd);
    EXPECT_EQ(e.trace_id, 0u);
  }
  EXPECT_EQ(bus->traces_started(), 0u);
}

TEST(CausalTracing, SampledRunsAreDeterministic) {
  auto run_stream = [] {
    grid::GridSystem system(traced_config(2),
                            workload::generate(small_spec(13)));
    system.run();
    TraceBus* bus = system.trace_bus();
    std::vector<TraceEvent> events;
    for (std::size_t i = 0; i < bus->size(); ++i) events.push_back(bus->at(i));
    return events;
  };
  const auto a = run_stream();
  const auto b = run_stream();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_ns, b[i].t_ns) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].node, b[i].node) << i;
    EXPECT_EQ(a[i].peer, b[i].peer) << i;
    EXPECT_EQ(a[i].tag, b[i].tag) << i;
    EXPECT_EQ(a[i].a, b[i].a) << i;
    EXPECT_EQ(a[i].trace_id, b[i].trace_id) << i;
    EXPECT_EQ(a[i].span, b[i].span) << i;
    EXPECT_EQ(a[i].parent, b[i].parent) << i;
  }
}

// Span tracing must not perturb the simulation itself: the same seed with
// and without sampling yields the same non-span event stream.
TEST(CausalTracing, SamplingDoesNotPerturbSimulation) {
  auto run_stream = [](std::uint64_t sample_every) {
    grid::GridSystem system(traced_config(sample_every),
                            workload::generate(small_spec(23)));
    system.run();
    TraceBus* bus = system.trace_bus();
    std::vector<TraceEvent> events;
    for (std::size_t i = 0; i < bus->size(); ++i) {
      const TraceEvent& e = bus->at(i);
      if (e.kind == EventKind::kSpanBegin || e.kind == EventKind::kSpanEnd) {
        continue;
      }
      events.push_back(e);
    }
    return events;
  };
  const auto off = run_stream(0);
  const auto on = run_stream(3);
  ASSERT_EQ(off.size(), on.size());
  for (std::size_t i = 0; i < off.size(); ++i) {
    EXPECT_EQ(off[i].t_ns, on[i].t_ns) << i;
    EXPECT_EQ(off[i].kind, on[i].kind) << i;
    EXPECT_EQ(off[i].node, on[i].node) << i;
    EXPECT_EQ(off[i].a, on[i].a) << i;
  }
}

// --- metrics registry ------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableInstruments) {
  MetricsRegistry registry;
  MetricsRegistry::Counter& c1 = registry.counter("pool/fresh");
  MetricsRegistry::Counter& c2 = registry.counter("pool/fresh");
  EXPECT_EQ(&c1, &c2);
  c1.inc(3);
  c2.inc();
  EXPECT_EQ(c1.value(), 4u);

  auto& d1 = registry.distribution("wait", 0.0, 100.0, 10);
  auto& d2 = registry.distribution("wait", 0.0, 50.0, 5);  // first call wins
  EXPECT_EQ(&d1, &d2);
  registry.gauge("depth", [] { return 7.0; });
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, DistributionQuantileInterpolates) {
  MetricsRegistry registry;
  auto& d = registry.distribution("wait", 0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) d.observe(static_cast<double>(i) + 0.5);
  EXPECT_EQ(d.stats().count(), 100u);
  EXPECT_NEAR(d.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(d.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(d.quantile(0.0), 0.0, 1.5);
}

TEST(MetricsRegistry, CsvSnapshotHasOneRowPerInstrument) {
  MetricsRegistry registry;
  registry.counter("jobs/completed").inc(42);
  registry.gauge("queue/depth", [] { return 3.5; });
  auto& d = registry.distribution("wait", 0.0, 10.0, 10);
  d.observe(1.0);
  d.observe(2.0);

  const std::string path = testing::TempDir() + "/p2pgrid_metrics.csv";
  ASSERT_TRUE(registry.export_csv(path));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 4u);  // header + 3 instruments
  EXPECT_NE(lines[0].find("name,kind"), std::string::npos);
  EXPECT_NE(lines[1].find("jobs/completed,counter,"), std::string::npos);
  EXPECT_NE(lines[1].find("42"), std::string::npos);
  EXPECT_NE(lines[2].find("queue/depth,gauge,"), std::string::npos);
  EXPECT_NE(lines[3].find("wait,distribution,"), std::string::npos);
}

// --- memory accounting -----------------------------------------------------

TEST(MemoryAccountant, AddMergePeakAndSummary) {
  MemoryAccountant a;
  EXPECT_EQ(a.total(), 0u);
  a.add(MemClass::kSimEvents, 1000);
  a.add(MemClass::kSimEvents, 24);
  a.add(MemClass::kOverlayTables, 2048);
  EXPECT_EQ(a.of(MemClass::kSimEvents), 1024u);
  EXPECT_EQ(a.total(), 1024u + 2048u);

  MemoryAccountant b;
  b.add(MemClass::kSimEvents, 512);       // smaller: a's value survives
  b.add(MemClass::kMessagePool, 4096);    // new class: adopted
  a.merge_peak(b);
  EXPECT_EQ(a.of(MemClass::kSimEvents), 1024u);
  EXPECT_EQ(a.of(MemClass::kMessagePool), 4096u);
  EXPECT_EQ(a.of(MemClass::kOverlayTables), 2048u);

  const std::string s = a.summary();
  EXPECT_NE(s.find("sim_events"), std::string::npos);
  EXPECT_NE(s.find("overlay_tables"), std::string::npos);
  // Zero classes are omitted from the summary.
  EXPECT_EQ(s.find("trace_ring"), std::string::npos);
}

TEST(MemoryAccounting, GridBreakdownCoversLiveSubsystems) {
  grid::GridConfig config;
  config.kind = grid::MatchmakerKind::kRnTree;
  config.light_maintenance = true;
  config.obs.trace = true;
  config.obs.trace_capacity = 1u << 12;
  grid::GridSystem system(config, workload::generate(small_spec(5)));
  system.run();

  const MemoryAccountant acc = system.memory_breakdown();
  EXPECT_GT(acc.of(MemClass::kSimEvents), 0u);
  EXPECT_GT(acc.of(MemClass::kOverlayTables), 0u);
  EXPECT_GT(acc.of(MemClass::kTraceRing), 0u);
  EXPECT_GT(acc.of(MemClass::kMetrics), 0u);
  // The trace ring is capacity-bounded: 2^12 events at sizeof(TraceEvent).
  EXPECT_GE(acc.of(MemClass::kTraceRing), (1u << 12) * sizeof(TraceEvent));
  EXPECT_EQ(acc.total(),
            acc.of(MemClass::kSimEvents) + acc.of(MemClass::kMessagePool) +
                acc.of(MemClass::kOverlayTables) +
                acc.of(MemClass::kGridState) + acc.of(MemClass::kRpcPending) +
                acc.of(MemClass::kTraceRing) + acc.of(MemClass::kMetrics));
}

}  // namespace
}  // namespace pgrid::obs
