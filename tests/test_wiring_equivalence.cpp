// Property tests for the O(N log N) instant-wiring paths: the fast
// wire_ring_instantly / wire_space_instantly must produce *bit-identical*
// routing state (fingers, successor lists, predecessors, zones, neighbor
// tables) to the retained naive references across randomized sizes and
// dimensions, and the cached oracle indexes must agree with the O(N)
// ground-truth scans after interleaved crash/restart.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "can/space.h"
#include "chord/ring.h"
#include "common/rng.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace {

using namespace pgrid;

// --- Chord: fast wiring == naive wiring -------------------------------------

struct ChordSnapshot {
  chord::Peer pred;
  std::vector<chord::Peer> succs;
  std::array<chord::Peer, chord::ChordNode::kBits> fingers;
};

ChordSnapshot snapshot_of(const chord::ChordNode& node) {
  ChordSnapshot s;
  s.pred = node.predecessor();
  s.succs = node.successor_list();
  for (int i = 0; i < chord::ChordNode::kBits; ++i) {
    s.fingers[static_cast<std::size_t>(i)] = node.finger(i);
  }
  return s;
}

void expect_chord_equal(const ChordSnapshot& naive,
                        const chord::ChordNode& node, std::size_t n,
                        std::size_t host) {
  EXPECT_TRUE(naive.pred == node.predecessor())
      << "predecessor mismatch n=" << n << " host=" << host;
  ASSERT_EQ(naive.succs.size(), node.successor_list().size());
  for (std::size_t k = 0; k < naive.succs.size(); ++k) {
    EXPECT_TRUE(naive.succs[k] == node.successor_list()[k])
        << "successor[" << k << "] mismatch n=" << n << " host=" << host;
  }
  for (int i = 0; i < chord::ChordNode::kBits; ++i) {
    EXPECT_TRUE(naive.fingers[static_cast<std::size_t>(i)] == node.finger(i))
        << "finger[" << i << "] mismatch n=" << n << " host=" << host;
  }
}

TEST(WiringEquivalence, ChordFastMatchesNaiveAcrossSizes) {
  std::vector<std::size_t> sizes{1, 2, 3, 4, 5, 9, 17, 64, 129, 256, 257};
  Rng extra{0xC0FFEE};
  for (int t = 0; t < 5; ++t) sizes.push_back(1 + extra.index(257));

  for (std::size_t n : sizes) {
    sim::Simulator simulator;
    net::Network network(simulator, Rng{1});
    chord::ChordConfig config;
    config.run_maintenance = false;
    chord::ChordRing ring(network, config, Rng{2});
    Rng id_rng{0x51D * (n + 1)};
    for (std::size_t i = 0; i < n; ++i) ring.add_host(Guid{id_rng.next()});

    std::vector<chord::ChordNode*> nodes;
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(&ring.host(i).node());

    chord::wire_ring_instantly_naive(nodes);
    std::vector<ChordSnapshot> naive;
    naive.reserve(n);
    for (const chord::ChordNode* node : nodes) {
      naive.push_back(snapshot_of(*node));
    }

    chord::wire_ring_instantly(nodes);
    for (std::size_t i = 0; i < n; ++i) {
      expect_chord_equal(naive[i], *nodes[i], n, i);
    }
  }
}

// --- CAN: fast wiring == naive wiring ----------------------------------------

struct CanSnapshot {
  std::vector<can::Zone> zones;
  FlatMap<net::NodeAddr, can::NeighborState> neighbors;
};

void expect_can_equal(const CanSnapshot& naive, const can::CanNode& node,
                      std::size_t n, std::size_t dims, std::size_t host) {
  ASSERT_EQ(naive.zones.size(), node.zones().size());
  for (std::size_t z = 0; z < naive.zones.size(); ++z) {
    EXPECT_TRUE(naive.zones[z] == node.zones()[z])
        << "zone mismatch n=" << n << " dims=" << dims << " host=" << host;
  }
  const auto& got = node.neighbors();
  ASSERT_EQ(naive.neighbors.size(), got.size())
      << "neighbor count mismatch n=" << n << " dims=" << dims
      << " host=" << host;
  auto nit = naive.neighbors.begin();
  auto git = got.begin();
  for (; nit != naive.neighbors.end(); ++nit, ++git) {
    EXPECT_EQ(nit->first, git->first) << "neighbor addr order mismatch";
    EXPECT_EQ(nit->second.id, git->second.id);
    ASSERT_EQ(nit->second.zones.size(), git->second.zones.size());
    for (std::size_t z = 0; z < nit->second.zones.size(); ++z) {
      EXPECT_TRUE(nit->second.zones[z] == git->second.zones[z]);
    }
    EXPECT_TRUE(nit->second.rep_point == git->second.rep_point);
    EXPECT_EQ(nit->second.load, git->second.load);
    EXPECT_EQ(nit->second.their_neighbors, git->second.their_neighbors);
    EXPECT_EQ(nit->second.update_seq, git->second.update_seq);
  }
}

void run_can_case(std::size_t n, std::size_t dims,
                  const std::vector<can::Point>& points) {
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1});
  can::CanConfig config;
  config.dims = dims;
  config.run_maintenance = false;
  can::CanSpace space(network, config, Rng{2});
  for (std::size_t i = 0; i < n; ++i) {
    space.add_host(Guid::of(std::uint64_t{0xCA} + i * 131), points[i]);
  }

  std::vector<can::CanNode*> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(&space.host(i).node());

  can::wire_space_instantly_naive(nodes, dims);
  std::vector<CanSnapshot> naive;
  naive.reserve(n);
  for (const can::CanNode* node : nodes) {
    naive.push_back(CanSnapshot{node->zones(), node->neighbors()});
  }
  EXPECT_TRUE(space.zones_tile_space());

  can::wire_space_instantly(nodes, dims);
  EXPECT_TRUE(space.zones_tile_space());
  for (std::size_t i = 0; i < n; ++i) {
    expect_can_equal(naive[i], *nodes[i], n, dims, i);
  }
}

TEST(WiringEquivalence, CanFastMatchesNaiveAcrossSizesAndDims) {
  for (std::size_t dims : {2u, 3u, 4u}) {
    std::vector<std::size_t> sizes{1, 2, 3, 5, 17, 64, 129, 257};
    Rng extra{0xBADA55 + dims};
    sizes.push_back(1 + extra.index(257));
    sizes.push_back(1 + extra.index(257));
    for (std::size_t n : sizes) {
      Rng point_rng{0xF00D * (n + 1) + dims};
      std::vector<can::Point> points;
      points.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        can::Point p(dims);
        for (std::size_t d = 0; d < dims; ++d) p[d] = point_rng.uniform();
        points.push_back(p);
      }
      run_can_case(n, dims, points);
    }
  }
}

TEST(WiringEquivalence, CanHandlesCoincidentAndBoundaryPoints) {
  // All joiners share one representative point: every split takes the
  // midpoint fallback, exercising deep splits of a single lineage.
  {
    const std::size_t n = 33, dims = 3;
    std::vector<can::Point> points(n, can::Point{0.375, 0.5, 0.625});
    run_can_case(n, dims, points);
  }
  // Coordinates snapped to a coarse grid: representative points land
  // exactly on split planes, stressing the half-open contains/descent
  // agreement and duplicate-point splits.
  {
    const std::size_t n = 129, dims = 2;
    Rng grid_rng{77};
    std::vector<can::Point> points;
    points.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      can::Point p(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        p[d] = 0.25 * static_cast<double>(grid_rng.index(4));
      }
      points.push_back(p);
    }
    run_can_case(n, dims, points);
  }
  // (Representative points outside [0,1)^d are a contract violation:
  // Zone::split_for PGRID_EXPECTS the joiner point, so both wiring paths
  // reject them identically before any state diverges.)
}

// --- cached oracle indexes vs ground-truth scans ------------------------------

TEST(OracleIndex, ChordOracleConsistentUnderCrashRestart) {
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1});
  chord::ChordConfig config;
  config.run_maintenance = false;
  chord::ChordRing ring(network, config, Rng{2});
  const std::size_t n = 64;
  for (std::size_t i = 0; i < n; ++i) {
    ring.add_host(Guid::of(std::uint64_t{0xAB} + i * 2654435761ULL));
  }
  ring.wire_instantly();

  Rng ops{1234};
  for (int step = 0; step < 200; ++step) {
    const std::size_t idx = ops.index(n);
    if (ops.uniform() < 0.5) {
      ring.crash(idx);
    } else {
      ring.restart(idx);
    }
    std::vector<const chord::ChordNode*> live;
    for (std::size_t i = 0; i < n; ++i) {
      if (!ring.crashed(i)) live.push_back(&ring.host(i).node());
    }
    for (int q = 0; q < 8; ++q) {
      const Guid key{ops.next()};
      const chord::Peer expect = chord::ring_oracle_successor(live, key);
      const chord::Peer got = ring.oracle_successor(key);
      ASSERT_TRUE(expect == got) << "step=" << step << " q=" << q;
    }
  }
  for (std::size_t i = 0; i < n; ++i) ring.crash(i);
  EXPECT_FALSE(ring.oracle_successor(Guid{42}).valid());
}

TEST(OracleIndex, CanOracleConsistentUnderCrashRestart) {
  sim::Simulator simulator;
  net::Network network(simulator, Rng{1});
  can::CanConfig config;
  config.dims = 3;
  config.run_maintenance = false;
  can::CanSpace space(network, config, Rng{2});
  const std::size_t n = 48;
  Rng point_rng{7};
  for (std::size_t i = 0; i < n; ++i) {
    can::Point p(config.dims);
    for (std::size_t d = 0; d < config.dims; ++d) p[d] = point_rng.uniform();
    space.add_host(Guid::of(std::uint64_t{0xCD} + i * 17), p);
  }
  space.wire_instantly();

  Rng ops{4321};
  for (int step = 0; step < 150; ++step) {
    const std::size_t idx = ops.index(n);
    if (ops.uniform() < 0.5) {
      space.crash(idx);
    } else {
      space.restart(idx);
    }
    for (int q = 0; q < 8; ++q) {
      can::Point p(config.dims);
      for (std::size_t d = 0; d < config.dims; ++d) p[d] = ops.uniform();
      // Ground truth: first live host (in host order) owning p.
      can::Peer expect = can::kNoPeer;
      for (std::size_t i = 0; i < n; ++i) {
        if (!space.crashed(i) && space.host(i).node().owns(p)) {
          expect = can::Peer{space.host(i).addr(), space.host(i).node().id()};
          break;
        }
      }
      const can::Peer got = space.oracle_owner(p);
      ASSERT_TRUE(expect == got) << "step=" << step << " q=" << q;
    }
  }
  for (std::size_t i = 0; i < n; ++i) space.crash(i);
  EXPECT_FALSE(space.oracle_owner(can::Point{0.5, 0.5, 0.5}).valid());
}

}  // namespace
