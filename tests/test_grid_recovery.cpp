// Failure recovery (§2): run-node death -> owner re-matches; owner death ->
// run node finds a new owner via the overlay; both die -> client resubmits.

#include <gtest/gtest.h>

#include "grid/grid_system.h"
#include "net/fault_plane.h"

namespace pgrid::grid {
namespace {

workload::Workload recovery_workload(std::uint64_t seed, std::size_t nodes,
                                     std::size_t jobs, double runtime,
                                     bool fixed_runtime = true) {
  workload::WorkloadSpec spec;
  spec.node_count = nodes;
  spec.job_count = jobs;
  spec.mean_runtime_sec = runtime;
  spec.mean_interarrival_sec = 0.5;
  spec.constraint_probability = 0.0;  // keep every node eligible
  spec.client_count = 1;
  spec.seed = seed;
  workload::Workload w = workload::generate(spec);
  if (fixed_runtime) {
    // Deterministic service times so crash timing is controlled precisely.
    for (auto& job : w.jobs) job.runtime_sec = runtime;
  }
  return w;
}

GridConfig recovery_config(MatchmakerKind kind, std::uint64_t seed = 1) {
  GridConfig config;
  config.kind = kind;
  config.seed = seed;
  config.node.heartbeat_period = sim::SimTime::seconds(3.0);
  config.node.heartbeat_miss_threshold = 2;
  config.client.resubmit_base_sec = 400.0;
  return config;
}

/// The grid node currently executing job `seq`, or npos.
std::size_t find_run_node(GridSystem& system, std::uint64_t seq) {
  const auto& outcome = system.collector().job(seq);
  if (!outcome.started()) return SIZE_MAX;
  return outcome.run_node;
}

TEST(GridRecovery, RunNodeDeathTriggersRerun) {
  GridSystem system(recovery_config(MatchmakerKind::kCentralized),
                    recovery_workload(1, 8, 10, 200.0));
  system.run_for(30.0);  // all jobs injected and started queuing

  // Kill whichever node is executing job 0 (runtime is fixed at 200 s, so
  // the job is guaranteed to still be in flight at t=30 s).
  const std::size_t victim = find_run_node(system, 0);
  ASSERT_NE(victim, SIZE_MAX);
  ASSERT_FALSE(system.collector().job(0).completed());
  system.crash_node(victim);

  system.run();
  ASSERT_TRUE(system.finished());
  const auto& c = system.collector();
  // Every job completed despite the crash; job 0 (at least) was requeued.
  EXPECT_EQ(c.completed_count(), 10u);
  EXPECT_GE(c.total_requeues(), 1u);
  EXPECT_GE(system.aggregate_node_stats().run_recoveries, 1u);
  // The re-run landed on a live node.
  EXPECT_NE(c.job(0).run_node, victim);
}

TEST(GridRecovery, OwnerDeathHandsOffMonitoring) {
  GridSystem system(recovery_config(MatchmakerKind::kRnTree, 2),
                    recovery_workload(2, 10, 6, 300.0));
  system.run_for(40.0);

  // Find an owner of a job that is running on a *different* node, so the
  // run node survives the owner's crash and must hand off monitoring.
  std::size_t owner_idx = SIZE_MAX;
  for (std::size_t i = 0; i < system.node_count() && owner_idx == SIZE_MAX;
       ++i) {
    for (std::uint64_t seq : system.node(i).owned_seqs()) {
      const auto& outcome = system.collector().job(seq);
      if (outcome.started() && !outcome.completed() &&
          outcome.run_node != i) {
        owner_idx = i;
        break;
      }
    }
  }
  ASSERT_NE(owner_idx, SIZE_MAX) << "no suitable owner found";
  system.crash_node(owner_idx);

  system.run();
  ASSERT_TRUE(system.finished());
  EXPECT_EQ(system.collector().completed_count(), 6u);
  // Run nodes detected the dead owner and re-replicated the profile.
  EXPECT_GE(system.aggregate_node_stats().owner_recoveries, 1u);
}

TEST(GridRecovery, DoubleFailureFallsBackToClientResubmission) {
  GridSystem system(recovery_config(MatchmakerKind::kCentralized, 3),
                    recovery_workload(3, 6, 4, 250.0));
  system.run_for(30.0);

  // Kill both the run node of job 0 and its owner (with the centralized
  // baseline the injection node is the owner; kill every node that holds
  // any state for job 0: brute force — crash run node and all owners).
  const std::size_t run_idx = find_run_node(system, 0);
  ASSERT_NE(run_idx, SIZE_MAX);
  std::vector<std::size_t> owners;
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    if (system.node(i).owned_jobs() > 0) owners.push_back(i);
  }
  system.crash_node(run_idx);
  for (std::size_t i : owners) system.crash_node(i);

  system.run();
  ASSERT_TRUE(system.finished());
  const auto& c = system.collector();
  // The orphaned jobs were resubmitted and eventually completed.
  EXPECT_GE(c.total_resubmissions(), 1u);
  EXPECT_EQ(c.completed_count(), 4u);
}

TEST(GridRecovery, CrashedNodesQueueIsRerunElsewhere) {
  GridSystem system(recovery_config(MatchmakerKind::kCentralized, 4),
                    recovery_workload(4, 4, 12, 100.0));
  system.run_for(20.0);
  // The least capable? Just kill node 0 regardless; its whole queue must
  // resurface elsewhere.
  const double queued = system.node(0).queue_length();
  system.crash_node(0);
  system.run();
  ASSERT_TRUE(system.finished());
  EXPECT_EQ(system.collector().completed_count(), 12u);
  if (queued > 0) {
    EXPECT_GE(system.collector().total_requeues(), 1u);
  }
}

TEST(GridRecovery, RestartedNodeRejoinsAndServes) {
  GridSystem system(recovery_config(MatchmakerKind::kRnTree, 5),
                    recovery_workload(5, 8, 20, 50.0));
  system.run_for(10.0);
  system.crash_node(3);
  system.run_for(30.0);
  EXPECT_FALSE(system.node_running(3));
  system.restart_node(3);
  system.run_for(60.0);
  EXPECT_TRUE(system.node_running(3));
  system.run();
  ASSERT_TRUE(system.finished());
  EXPECT_EQ(system.collector().completed_count(), 20u);
}

/// Crash the owner of a job running on a *different* node (so the run node
/// survives and must hand off monitoring). Returns the crashed index, or
/// SIZE_MAX if no such owner exists yet.
std::size_t crash_one_remote_owner(GridSystem& system) {
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    for (std::uint64_t seq : system.node(i).owned_seqs()) {
      const auto& outcome = system.collector().job(seq);
      if (outcome.started() && !outcome.completed() && outcome.run_node != i) {
        system.crash_node(i);
        return i;
      }
    }
  }
  return SIZE_MAX;
}

// Owner-failure recovery must tolerate a network that duplicates
// heartbeats: a doubled heartbeat from the (dead) owner's last breath or
// from the run node must neither resurrect the dead owner in anyone's
// tables nor double-complete a job. Deterministic: fixed seed, fixed
// runtimes, duplication drawn from the fault plane's seeded RNG.
TEST(GridRecovery, OwnerDeathRecoversUnderDuplicatedHeartbeats) {
  GridSystem system(recovery_config(MatchmakerKind::kRnTree, 7),
                    recovery_workload(7, 10, 6, 300.0));
  system.build();
  system.network().fault_plane().set_duplication(0.5);
  system.run_for(40.0);

  const std::size_t owner_idx = crash_one_remote_owner(system);
  ASSERT_NE(owner_idx, SIZE_MAX) << "no suitable owner found";

  system.run();
  ASSERT_TRUE(system.finished());
  const auto& c = system.collector();
  // Exactly once despite every message being a coin-flip duplicate.
  EXPECT_EQ(c.completed_count(), 6u);
  EXPECT_GE(system.aggregate_node_stats().owner_recoveries, 1u);
  EXPECT_GT(system.net_stats().messages_duplicated, 0u);
}

// Same shape under reordering: heartbeats (and the recovery protocol's own
// messages) can arrive behind later sends. A stale pre-crash heartbeat
// arriving after the eviction decision must not corrupt monitoring state.
TEST(GridRecovery, OwnerDeathRecoversUnderReorderedHeartbeats) {
  GridSystem system(recovery_config(MatchmakerKind::kRnTree, 8),
                    recovery_workload(8, 10, 6, 300.0));
  system.build();
  system.network().fault_plane().set_reorder(0.5, sim::SimTime::seconds(2.0));
  system.run_for(40.0);

  const std::size_t owner_idx = crash_one_remote_owner(system);
  ASSERT_NE(owner_idx, SIZE_MAX) << "no suitable owner found";

  system.run();
  ASSERT_TRUE(system.finished());
  const auto& c = system.collector();
  EXPECT_EQ(c.completed_count(), 6u);
  EXPECT_GE(system.aggregate_node_stats().owner_recoveries, 1u);
  EXPECT_GT(system.net_stats().messages_reordered, 0u);
}

// End-to-end with the φ-accrual detector driving evictions instead of the
// fixed deadline: recovery still happens, and with the ground-truth oracle
// attached the eviction of a genuinely crashed node is not a false
// positive.
TEST(GridRecovery, PhiDetectorDrivesOwnerRecovery) {
  GridConfig config = recovery_config(MatchmakerKind::kRnTree, 9);
  config.node.phi.enabled = true;
  config.node.audit_period = sim::SimTime::seconds(15.0);
  config.track_liveness = true;
  GridSystem system(config, recovery_workload(9, 10, 6, 300.0));
  system.run_for(40.0);

  const std::size_t owner_idx = crash_one_remote_owner(system);
  ASSERT_NE(owner_idx, SIZE_MAX) << "no suitable owner found";

  system.run();
  ASSERT_TRUE(system.finished());
  const auto& c = system.collector();
  EXPECT_EQ(c.completed_count(), 6u);
  const auto stats = system.aggregate_node_stats();
  EXPECT_GE(stats.owner_recoveries, 1u);
  // The victim was genuinely dead: no eviction was a false positive, and
  // each classified detection carries a positive latency.
  EXPECT_EQ(stats.fp_evictions, 0u);
  for (double latency : stats.detection_latency.values()) {
    EXPECT_GT(latency, 0.0);
  }
}

class ChurnSweep : public ::testing::TestWithParam<MatchmakerKind> {};

TEST_P(ChurnSweep, JobsCompleteUnderContinuousChurn) {
  GridConfig config = recovery_config(GetParam(), 6);
  GridSystem system(config, recovery_workload(6, 24, 40, 30.0));
  system.build();
  sim::ChurnModel churn;
  churn.mean_lifetime_sec = 600.0;
  churn.mean_downtime_sec = 60.0;
  churn.churn_fraction = 0.5;
  system.enable_churn(churn);
  system.run();
  ASSERT_TRUE(system.finished()) << matchmaker_name(GetParam());
  const auto& c = system.collector();
  // The vast majority completes; a handful may be abandoned after repeated
  // double failures, but the system must not wedge.
  EXPECT_GE(c.completed_count(), 36u) << matchmaker_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, ChurnSweep,
    ::testing::Values(MatchmakerKind::kCentralized, MatchmakerKind::kRnTree,
                      MatchmakerKind::kCanBasic),
    [](const ::testing::TestParamInfo<MatchmakerKind>& info) {
      std::string name = matchmaker_name(info.param);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace pgrid::grid
