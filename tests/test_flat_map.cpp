// FlatMap: the sorted-vector map that replaced std::map in per-node routing
// state. Routing code iterates these tables inside the deterministic
// simulation loop, so beyond basic container behavior the tests pin the
// property the simulation depends on: iteration order identical to std::map.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/flat_map.h"
#include "common/rng.h"

namespace {

using pgrid::FlatMap;
using pgrid::Rng;

TEST(FlatMap, StartsEmpty) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(1), m.end());
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.count(1), 0u);
}

TEST(FlatMap, SubscriptInsertsAndFinds) {
  FlatMap<int, std::string> m;
  m[3] = "three";
  m[1] = "one";
  m[2] = "two";
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[1], "one");
  EXPECT_EQ(m[2], "two");
  EXPECT_EQ(m[3], "three");
  EXPECT_EQ(m.at(2), "two");
  ASSERT_NE(m.find(3), m.end());
  EXPECT_EQ(m.find(3)->second, "three");
  EXPECT_TRUE(m.contains(2));
  EXPECT_EQ(m.count(2), 1u);
  // operator[] on a present key does not insert.
  m[2] = "TWO";
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.at(2), "TWO");
}

TEST(FlatMap, IterationIsSortedByKey) {
  FlatMap<int, int> m;
  for (int k : {5, 1, 9, 3, 7, 2, 8, 4, 6, 0}) m[k] = k * 10;
  int expect = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(k, expect);
    EXPECT_EQ(v, k * 10);
    ++expect;
  }
  EXPECT_EQ(expect, 10);
}

TEST(FlatMap, EmplaceDoesNotClobber) {
  FlatMap<int, std::string> m;
  EXPECT_TRUE(m.emplace(1, "first").second);
  EXPECT_FALSE(m.emplace(1, "second").second);
  EXPECT_EQ(m.at(1), "first");
}

TEST(FlatMap, InsertOrAssignClobbers) {
  FlatMap<int, std::string> m;
  m.insert_or_assign(1, "first");
  m.insert_or_assign(1, "second");
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.at(1), "second");
}

TEST(FlatMap, EraseByKeyAndIterator) {
  FlatMap<int, int> m;
  for (int k = 0; k < 6; ++k) m[k] = k;
  EXPECT_EQ(m.erase(3), 1u);
  EXPECT_EQ(m.erase(3), 0u);
  EXPECT_EQ(m.size(), 5u);
  // Erase-while-iterating, the pattern the CAN node uses to expire
  // neighbors: erase returns the next valid iterator.
  for (auto it = m.begin(); it != m.end();) {
    if (it->first % 2 == 0) {
      it = m.erase(it);
    } else {
      ++it;
    }
  }
  ASSERT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(1));
  EXPECT_TRUE(m.contains(5));
}

TEST(FlatMap, EqualityComparesContents) {
  FlatMap<int, int> a;
  FlatMap<int, int> b;
  a[1] = 10;
  a[2] = 20;
  b[2] = 20;
  b[1] = 10;
  EXPECT_TRUE(a == b);
  b[3] = 30;
  EXPECT_FALSE(a == b);
}

TEST(FlatMap, MatchesStdMapUnderRandomOps) {
  FlatMap<int, int> flat;
  std::map<int, int> ref;
  Rng rng{0xF1A7};
  for (int step = 0; step < 2000; ++step) {
    const int key = static_cast<int>(rng.index(64));
    const double coin = rng.uniform();
    if (coin < 0.45) {
      const int value = static_cast<int>(rng.next() & 0xFFFF);
      flat[key] = value;
      ref[key] = value;
    } else if (coin < 0.65) {
      flat.insert_or_assign(key, step);
      ref.insert_or_assign(key, step);
    } else if (coin < 0.8) {
      flat.emplace(key, step);
      ref.emplace(key, step);
    } else {
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    }
    ASSERT_EQ(flat.size(), ref.size());
    // Same contents in the same order — the determinism contract.
    auto fit = flat.begin();
    for (const auto& [k, v] : ref) {
      ASSERT_EQ(fit->first, k);
      ASSERT_EQ(fit->second, v);
      ++fit;
    }
  }
}

}  // namespace
