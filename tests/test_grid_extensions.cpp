// §5 future-work features: DAG dependencies (DAGMan analogue), fair-share
// run queues, and quota enforcement against runaway jobs.

#include <gtest/gtest.h>

#include "grid/dag.h"
#include "grid/grid_system.h"

namespace pgrid::grid {
namespace {

workload::Workload flat_workload(std::size_t nodes, std::size_t jobs,
                                 double runtime, std::uint64_t seed,
                                 std::size_t clients = 1) {
  workload::WorkloadSpec spec;
  spec.node_count = nodes;
  spec.job_count = jobs;
  spec.mean_runtime_sec = runtime;
  spec.mean_interarrival_sec = 0.1;
  spec.constraint_probability = 0.0;
  spec.client_count = clients;
  spec.seed = seed;
  workload::Workload w = workload::generate(spec);
  for (auto& job : w.jobs) job.runtime_sec = runtime;  // deterministic
  return w;
}

GridConfig manual_config(std::uint64_t seed = 1) {
  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = seed;
  config.manual_submission = true;
  config.light_maintenance = true;
  return config;
}

// --- DAG dependencies ---------------------------------------------------------

TEST(DagRunner, LinearChainRunsInOrder) {
  // simulation -> analysis -> publish: §5's "analysis after simulation".
  GridSystem system(manual_config(), flat_workload(4, 3, 30.0, 1));
  DagRunner dag(system, {{0, 1}, {1, 2}});
  dag.start();
  system.run();
  ASSERT_TRUE(dag.finished());
  EXPECT_EQ(dag.completed(), 3u);
  const auto& c = system.collector();
  // Strict ordering: each stage starts only after its parent completed.
  EXPECT_GE(c.job(1).started_sec, c.job(0).completed_sec);
  EXPECT_GE(c.job(2).started_sec, c.job(1).completed_sec);
}

TEST(DagRunner, DiamondJoinsWaitForAllParents) {
  //    0
  //   / \
  //  1   2
  //   \ /
  //    3
  GridSystem system(manual_config(2), flat_workload(6, 4, 20.0, 2));
  DagRunner dag(system, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  dag.start();
  system.run();
  ASSERT_TRUE(dag.finished());
  EXPECT_EQ(dag.completed(), 4u);
  const auto& c = system.collector();
  EXPECT_GE(c.job(3).started_sec,
            std::max(c.job(1).completed_sec, c.job(2).completed_sec));
  // Depths computed correctly.
  EXPECT_EQ(dag.depths()[0], 0u);
  EXPECT_EQ(dag.depths()[1], 1u);
  EXPECT_EQ(dag.depths()[3], 2u);
}

TEST(DagRunner, IndependentRootsRunConcurrently) {
  GridSystem system(manual_config(3), flat_workload(8, 6, 50.0, 3));
  DagRunner dag(system, {{0, 3}, {1, 4}, {2, 5}});
  dag.start();
  system.run();
  ASSERT_TRUE(dag.finished());
  const auto& c = system.collector();
  // All three roots started around t=0, i.e. in parallel.
  for (std::uint64_t r : {0u, 1u, 2u}) {
    EXPECT_LT(c.job(r).started_sec, 10.0);
  }
}

TEST(DagRunner, FailedParentCancelsDescendants) {
  // Job 1's constraints are impossible, so generation after generation
  // fails and the client abandons it -> jobs 2 and 3 must be cancelled.
  workload::Workload w = flat_workload(4, 4, 10.0, 4);
  w.jobs[1].constraints.active[0] = true;
  w.jobs[1].constraints.min[0] = 1e9;
  GridConfig config = manual_config(4);
  config.client.max_generations = 2;
  config.client.resubmit_base_sec = 50.0;
  config.client.resubmit_runtime_factor = 1.0;
  GridSystem system(config, w);
  DagRunner dag(system, {{0, 1}, {1, 2}, {2, 3}});
  dag.start();
  system.run();
  ASSERT_TRUE(dag.finished());
  EXPECT_EQ(dag.completed(), 1u);   // job 0
  EXPECT_EQ(dag.failed(), 1u);      // job 1
  EXPECT_EQ(dag.cancelled(), 2u);   // jobs 2, 3 never ran
  EXPECT_FALSE(system.collector().job(2).started());
  EXPECT_FALSE(system.collector().job(3).started());
}

TEST(DagRunner, RejectsCycles) {
  GridSystem system(manual_config(5), flat_workload(2, 3, 10.0, 5));
  EXPECT_DEATH(DagRunner(system, {{0, 1}, {1, 2}, {2, 0}}), "cycle|visited");
}

TEST(DagRunner, WorksOverP2POverlayToo) {
  GridConfig config = manual_config(6);
  config.kind = MatchmakerKind::kRnTree;
  GridSystem system(config, flat_workload(12, 5, 15.0, 6));
  DagRunner dag(system, {{0, 1}, {0, 2}, {1, 3}, {2, 4}});
  dag.start();
  system.run();
  ASSERT_TRUE(dag.finished());
  EXPECT_EQ(dag.completed(), 5u);
}

// --- fair-share queueing -------------------------------------------------------

TEST(FairShare, LightClientIsNotStarvedByHeavyClient) {
  // One node. Client 0 floods 12 jobs at t=0; client 1 submits 2 jobs just
  // after. Under FIFO client 1 waits for the whole flood; under fair share
  // its jobs interleave near the front.
  const auto build = [](QueuePolicy policy) {
    workload::Workload w = flat_workload(1, 14, 10.0, 7, 2);
    for (std::size_t j = 0; j < 12; ++j) {
      w.jobs[j].client = 0;
      w.jobs[j].arrival_sec = 0.01 * static_cast<double>(j);
    }
    for (std::size_t j = 12; j < 14; ++j) {
      w.jobs[j].client = 1;
      w.jobs[j].arrival_sec = 0.5 + 0.01 * static_cast<double>(j);
    }
    GridConfig config;
    config.kind = MatchmakerKind::kCentralized;
    config.seed = 7;
    config.light_maintenance = true;
    config.node.queue_policy = policy;
    config.client.resubmit_base_sec = 1e6;
    auto system = std::make_unique<GridSystem>(config, w);
    system->run();
    return system;
  };

  const auto fifo = build(QueuePolicy::kFifo);
  const auto fair = build(QueuePolicy::kFairShare);
  ASSERT_TRUE(fifo->finished());
  ASSERT_TRUE(fair->finished());

  const double fifo_wait = (fifo->collector().job(12).wait_sec() +
                            fifo->collector().job(13).wait_sec()) /
                           2.0;
  const double fair_wait = (fair->collector().job(12).wait_sec() +
                            fair->collector().job(13).wait_sec()) /
                           2.0;
  // FIFO: ~115s behind the flood. Fair share: served every other slot.
  EXPECT_GT(fifo_wait, 100.0);
  EXPECT_LT(fair_wait, 40.0);
  // Total work conserved either way.
  EXPECT_EQ(fair->collector().completed_count(), 14u);
}

TEST(FairShare, FifoWithinASingleClient) {
  workload::Workload w = flat_workload(1, 5, 5.0, 8, 1);
  for (std::size_t j = 0; j < 5; ++j) {
    w.jobs[j].arrival_sec = 0.01 * static_cast<double>(j);
  }
  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = 8;
  config.light_maintenance = true;
  // Constant latency keeps dispatch order equal to submission order (with
  // random latencies, closely spaced jobs can overtake each other in
  // flight, which is legitimate but not what this test asserts).
  config.latency = net::LatencyModel{sim::SimTime::millis(50),
                                     sim::SimTime::millis(50)};
  config.node.queue_policy = QueuePolicy::kFairShare;
  GridSystem system(config, w);
  system.run();
  ASSERT_TRUE(system.finished());
  double prev = -1.0;
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_GT(system.collector().job(j).started_sec, prev);
    prev = system.collector().job(j).started_sec;
  }
}

// --- quotas / runaway jobs -------------------------------------------------------

TEST(Quota, RunawayJobIsKilledAtDeadline) {
  // Job 0 declares 10 s but actually needs 500 s; the quota kills it at
  // declared x factor, freeing the node for the honest jobs behind it.
  workload::Workload w = flat_workload(1, 3, 10.0, 9);
  w.jobs[0].runtime_sec = 500.0;
  w.jobs[0].declared_runtime_sec = 10.0;
  for (std::size_t j = 0; j < 3; ++j) {
    w.jobs[j].arrival_sec = 0.01 * static_cast<double>(j);
  }
  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = 9;
  config.light_maintenance = true;
  config.node.runaway_kill_factor = 3.0;
  config.client.max_generations = 1;  // no pointless retries of the runaway
  GridSystem system(config, w);
  system.run();
  const auto& c = system.collector();
  // The runaway never completed; the honest jobs did, and promptly: the
  // node was blocked for at most 30 s (10 s declared x factor 3), not 500.
  EXPECT_FALSE(c.job(0).completed());
  EXPECT_TRUE(c.job(1).completed());
  EXPECT_TRUE(c.job(2).completed());
  EXPECT_LT(c.job(1).wait_sec(), 60.0);
  EXPECT_EQ(system.aggregate_node_stats().jobs_killed_quota, 1u);
}

TEST(Quota, HonestJobsUnaffectedByKillFactor) {
  workload::Workload w = flat_workload(4, 10, 20.0, 10);
  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = 10;
  config.light_maintenance = true;
  config.node.runaway_kill_factor = 2.0;
  GridSystem system(config, w);
  system.run();
  EXPECT_EQ(system.collector().completed_count(), 10u);
  EXPECT_EQ(system.aggregate_node_stats().jobs_killed_quota, 0u);
}

TEST(Quota, OutputQuotaRejectsOversizedJobs) {
  workload::Workload w = flat_workload(3, 4, 10.0, 11);
  w.jobs[1].output_kb = 100000.0;  // declares 100 MB of output
  GridConfig config;
  config.kind = MatchmakerKind::kCentralized;
  config.seed = 11;
  config.light_maintenance = true;
  config.node.max_output_kb = 4096.0;
  config.client.max_generations = 2;
  config.client.resubmit_base_sec = 60.0;
  config.client.resubmit_runtime_factor = 1.0;
  GridSystem system(config, w);
  system.run();
  const auto& c = system.collector();
  EXPECT_FALSE(c.job(1).completed());  // nowhere accepts it
  EXPECT_TRUE(c.job(0).completed());
  EXPECT_GE(system.aggregate_node_stats().quota_rejects, 1u);
}


// --- TTL-walk baseline (§4 related work) ----------------------------------------

TEST(TtlWalk, CompletesEasyWorkloads) {
  // With unconstrained jobs every node qualifies: the walk finds a run node
  // on its first step and all jobs complete.
  workload::Workload w = flat_workload(16, 30, 20.0, 20);
  GridConfig config;
  config.kind = MatchmakerKind::kTtlWalk;
  config.seed = 20;
  config.light_maintenance = true;
  GridSystem system(config, w);
  system.run();
  ASSERT_TRUE(system.finished());
  EXPECT_EQ(system.collector().completed_count(), 30u);
  EXPECT_EQ(system.collector().unmatched_count(), 0u);
}

TEST(TtlWalk, ShortTtlMissesRareResources) {
  // One node in 32 satisfies the constraint; a TTL of 2 hops usually fails
  // to stumble onto it, unlike the RN-Tree's directed search. This is the
  // paper's §4 critique of TTL-based resource discovery.
  workload::WorkloadSpec spec;
  spec.node_count = 32;
  spec.job_count = 20;
  spec.mean_runtime_sec = 10.0;
  spec.mean_interarrival_sec = 1.0;
  spec.constraint_probability = 0.0;
  spec.seed = 21;
  workload::Workload w = workload::generate(spec);
  // Make node capabilities uniform except one fast machine; constrain all jobs
  // to need it.
  for (auto& caps : w.node_caps) caps.v[0] = 1.0;
  w.node_caps[17].v[0] = 4.0;
  for (auto& job : w.jobs) {
    job.constraints.active[0] = true;
    job.constraints.min[0] = 4.0;
  }

  GridConfig config;
  config.kind = MatchmakerKind::kTtlWalk;
  config.seed = 21;
  config.light_maintenance = true;
  config.node.ttl_walk_ttl = 2;
  config.client.max_generations = 2;
  config.client.resubmit_base_sec = 200.0;
  GridSystem system(config, w);
  system.run();
  ASSERT_TRUE(system.finished());
  // Some generations failed to find the unique eligible node.
  EXPECT_GT(system.collector().unmatched_count(), 0u);

  // The RN-Tree on the identical workload finds it every time.
  GridConfig rn_config = config;
  rn_config.kind = MatchmakerKind::kRnTree;
  GridSystem rn(rn_config, w);
  rn.run();
  ASSERT_TRUE(rn.finished());
  EXPECT_EQ(rn.collector().completed_count(), 20u);
  EXPECT_EQ(rn.collector().unmatched_count(), 0u);
  // And every run landed on the unique eligible machine.
  for (std::size_t j = 0; j < 20; ++j) {
    EXPECT_EQ(rn.collector().job(j).run_node, 17u);
  }
}

TEST(TtlWalk, LongTtlEventuallyFinds) {
  workload::WorkloadSpec spec;
  spec.node_count = 24;
  spec.job_count = 10;
  spec.mean_runtime_sec = 10.0;
  spec.mean_interarrival_sec = 2.0;
  spec.constraint_probability = 0.0;
  spec.seed = 22;
  workload::Workload w = workload::generate(spec);
  for (auto& caps : w.node_caps) caps.v[1] = 1.0;
  // A handful of big-memory machines.
  for (std::size_t i : {3u, 11u, 19u}) w.node_caps[i].v[1] = 16.0;
  for (auto& job : w.jobs) {
    job.constraints.active[1] = true;
    job.constraints.min[1] = 16.0;
  }

  GridConfig config;
  config.kind = MatchmakerKind::kTtlWalk;
  config.seed = 22;
  config.light_maintenance = true;
  config.node.ttl_walk_ttl = 64;  // generous: walks reach everything
  GridSystem system(config, w);
  system.run();
  ASSERT_TRUE(system.finished());
  EXPECT_EQ(system.collector().completed_count(), 10u);
  for (std::size_t j = 0; j < 10; ++j) {
    const auto run = system.collector().job(j).run_node;
    EXPECT_TRUE(run == 3 || run == 11 || run == 19) << run;
  }
}

}  // namespace
}  // namespace pgrid::grid
