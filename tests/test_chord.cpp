// Chord: lookup correctness against the oracle, join protocol convergence,
// hop-count scaling, instant wiring invariants.

#include <gtest/gtest.h>

#include <set>

#include "chord/ring.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace pgrid::chord {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1,
                   ChordConfig config = ChordConfig{})
      : net(simulator, Rng{seed},
            net::LatencyModel{sim::SimTime::millis(20),
                              sim::SimTime::millis(80)}),
        ring(net, config, Rng{seed + 1000}) {}

  sim::Simulator simulator;
  net::Network net;
  ChordRing ring;

  void build(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      ring.add_host(Guid::of(std::uint64_t{0xC0FFEE} + i * 7919));
    }
    ring.wire_instantly();
  }

  /// Synchronous-style lookup: runs the simulator until the callback fires.
  struct LookupResult {
    Peer result;
    int hops = -1;
    bool completed = false;
  };
  LookupResult lookup_from(std::size_t host, Guid key) {
    LookupResult out;
    ring.host(host).node().lookup(key, [&](Peer r, int h) {
      out.result = r;
      out.hops = h;
      out.completed = true;
    });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(120));
    return out;
  }
};

TEST(ChordWiring, InstantRingIsConsistent) {
  Fixture fx;
  fx.build(32);
  // Every node's successor's predecessor is the node itself.
  std::set<Guid> ids;
  for (std::size_t i = 0; i < 32; ++i) {
    ids.insert(fx.ring.host(i).node().id());
  }
  ASSERT_EQ(ids.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    const ChordNode& node = fx.ring.host(i).node();
    const Peer succ = node.successor();
    ASSERT_TRUE(succ.valid());
    bool found = false;
    for (std::size_t j = 0; j < 32; ++j) {
      const ChordNode& other = fx.ring.host(j).node();
      if (other.addr() == succ.addr) {
        EXPECT_EQ(other.predecessor().addr, node.addr());
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(ChordWiring, FingersMatchOracle) {
  Fixture fx;
  fx.build(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const ChordNode& node = fx.ring.host(i).node();
    for (int f = 0; f < ChordNode::kBits; f += 7) {
      const Guid start{node.id().value() + (std::uint64_t{1} << f)};
      EXPECT_EQ(node.finger(f).id, fx.ring.oracle_successor(start).id);
    }
  }
}

TEST(ChordLookup, ResolvesOwnKeyRange) {
  Fixture fx;
  fx.build(16);
  // A key equal to a node id is owned by that node.
  for (std::size_t i = 0; i < 16; ++i) {
    const Guid id = fx.ring.host(i).node().id();
    const auto res = fx.lookup_from((i + 5) % 16, id);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.result.id, id);
  }
}

TEST(ChordLookup, MatchesOracleForRandomKeys) {
  Fixture fx{7};
  fx.build(100);
  Rng rng{99};
  for (int t = 0; t < 60; ++t) {
    const Guid key{rng.next()};
    const auto from = rng.index(100);
    const auto res = fx.lookup_from(from, key);
    ASSERT_TRUE(res.completed) << "lookup " << t;
    const Peer expect = fx.ring.oracle_successor(key);
    EXPECT_EQ(res.result.id, expect.id) << "key " << key.str();
    EXPECT_GE(res.hops, 0);
  }
}

TEST(ChordLookup, HopCountIsLogarithmic) {
  Fixture fx{11};
  fx.build(256);
  Rng rng{5};
  double total_hops = 0;
  constexpr int kLookups = 100;
  for (int t = 0; t < kLookups; ++t) {
    const auto res = fx.lookup_from(rng.index(256), Guid{rng.next()});
    ASSERT_TRUE(res.completed);
    total_hops += res.hops;
    EXPECT_LE(res.hops, 16);  // 2*log2(256)
  }
  // ~0.5 * log2(256) = 4 expected; generous envelope.
  EXPECT_LT(total_hops / kLookups, 7.0);
  EXPECT_GT(total_hops / kLookups, 1.0);
}

TEST(ChordLookup, SingletonRingOwnsEverything) {
  Fixture fx;
  fx.build(1);
  const auto res = fx.lookup_from(0, Guid{0x1234});
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.result.addr, fx.ring.host(0).node().addr());
  EXPECT_EQ(res.hops, 0);
}

TEST(ChordJoin, SequentialJoinsConvergeToConsistentRing) {
  Fixture fx{3};
  // Build a 12-node ring purely through the join protocol.
  auto& first = fx.ring.add_host(Guid::of(std::uint64_t{1}));
  first.node().create();
  const Peer boot{first.node().addr(), first.node().id()};
  for (std::size_t i = 2; i <= 12; ++i) {
    auto& host = fx.ring.add_host(Guid::of(i));
    bool joined = false;
    host.node().join(boot, [&](bool ok) { joined = ok; });
    fx.simulator.run_until(fx.simulator.now() + sim::SimTime::seconds(10));
    ASSERT_TRUE(joined) << "node " << i;
  }
  // Let stabilization settle rings and fingers.
  fx.simulator.run_until(fx.simulator.now() + sim::SimTime::seconds(120));

  // Successor pointers must form a single cycle covering all 12 nodes.
  std::map<Guid, Guid> succ_of;
  for (std::size_t i = 0; i < 12; ++i) {
    const ChordNode& node = fx.ring.host(i).node();
    ASSERT_TRUE(node.successor().valid());
    succ_of[node.id()] = node.successor().id;
  }
  Guid cursor = fx.ring.host(0).node().id();
  std::set<Guid> visited;
  for (int steps = 0; steps < 12; ++steps) {
    visited.insert(cursor);
    cursor = succ_of.at(cursor);
  }
  EXPECT_EQ(visited.size(), 12u);
  EXPECT_EQ(cursor, fx.ring.host(0).node().id());  // closed cycle

  // Lookups now match the oracle.
  Rng rng{77};
  for (int t = 0; t < 20; ++t) {
    const Guid key{rng.next()};
    const auto res = fx.lookup_from(rng.index(12), key);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.result.id, fx.ring.oracle_successor(key).id);
  }
}

TEST(ChordJoin, JoinThroughAnyBootstrapNode) {
  Fixture fx{4};
  fx.build(20);
  auto& joiner = fx.ring.add_host(Guid::of(std::uint64_t{0xABCDEF}));
  const ChordNode& boot = fx.ring.host(13).node();
  bool ok = false;
  joiner.node().join(Peer{boot.addr(), boot.id()}, [&](bool r) { ok = r; });
  fx.simulator.run_until(fx.simulator.now() + sim::SimTime::seconds(60));
  ASSERT_TRUE(ok);
  // After stabilization the joiner is fully inserted: its successor's
  // predecessor points back at it.
  const Peer succ = joiner.node().successor();
  ASSERT_TRUE(succ.valid());
  const auto res = fx.lookup_from(3, joiner.node().id());
  EXPECT_EQ(res.result.id, joiner.node().id());
}

TEST(ChordStats, LookupAccounting) {
  // Maintenance off so fix_fingers' internal lookups don't pollute counts.
  ChordConfig config;
  config.run_maintenance = false;
  Fixture fx{5, config};
  fx.build(64);
  auto& node = fx.ring.host(0).node();
  for (int t = 0; t < 10; ++t) {
    fx.lookup_from(0, Guid::of(std::uint64_t{900} + t));
  }
  EXPECT_EQ(node.stats().lookups_started, 10u);
  EXPECT_EQ(node.stats().lookups_ok, 10u);
  EXPECT_EQ(node.stats().lookups_failed, 0u);
  EXPECT_EQ(node.stats().lookup_hops.count(), 10u);
}

TEST(ChordNodeUnit, RandomPeerDrawsFromRoutingState) {
  Fixture fx{6};
  fx.build(32);
  Rng rng{8};
  const ChordNode& node = fx.ring.host(0).node();
  for (int t = 0; t < 50; ++t) {
    const Peer p = node.random_peer(rng);
    ASSERT_TRUE(p.valid());
    EXPECT_NE(p.addr, node.addr());
  }
}

// Property sweep: lookup correctness holds across ring sizes.
class ChordSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordSizeSweep, LookupsMatchOracle) {
  Fixture fx{GetParam()};
  fx.build(GetParam());
  Rng rng{GetParam() * 31 + 1};
  const int lookups = 20;
  for (int t = 0; t < lookups; ++t) {
    const Guid key{rng.next()};
    const auto res = fx.lookup_from(rng.index(GetParam()), key);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.result.id, fx.ring.oracle_successor(key).id);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64, 129, 512));

}  // namespace
}  // namespace pgrid::chord
