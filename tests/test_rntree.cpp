// RN-Tree: trie-region construction (levels, parents, single root), O(log N)
// height, aggregation correctness vs an oracle, and the extended DFS search.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chord/ring.h"
#include "net/network.h"
#include "rntree/rn_tree.h"
#include "sim/simulator.h"

namespace pgrid::rntree {
namespace {

/// Network host stacking an RnTreeService on a ChordNode.
class RnHost final : public net::MessageHandler {
 public:
  RnHost(net::Network& network, Guid id, chord::ChordConfig chord_config,
         RnTreeConfig tree_config, Rng rng)
      : addr_(network.add_handler(this)),
        chord_(network, addr_, id, chord_config, rng.fork(1)),
        tree_(network, chord_, tree_config,
              [this] { return RnTreeService::LocalInfo{caps, load}; },
              rng.fork(2)) {}

  void on_message(net::NodeAddr from, net::MessagePtr msg) override {
    if (chord_.handle(from, msg)) return;
    tree_.handle(from, msg);
  }

  [[nodiscard]] chord::ChordNode& chord() noexcept { return chord_; }
  [[nodiscard]] RnTreeService& tree() noexcept { return tree_; }
  [[nodiscard]] net::NodeAddr addr() const noexcept { return addr_; }

  Caps caps{};
  double load = 0.0;

 private:
  net::NodeAddr addr_;
  chord::ChordNode chord_;
  RnTreeService tree_;
};

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1)
      : net(simulator, Rng{seed},
            net::LatencyModel{sim::SimTime::millis(20),
                              sim::SimTime::millis(80)}),
        ring(net, chord::ChordConfig{}, Rng{seed + 1}),
        rng(seed + 2) {}

  sim::Simulator simulator;
  net::Network net;
  chord::ChordRing ring;  // only for oracle_successor; hosts are RnHosts
  Rng rng;
  std::vector<std::unique_ptr<RnHost>> hosts;

  void build(std::size_t n, double settle_sec = 30.0) {
    chord::ChordConfig chord_config;
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<RnHost>(
          net, Guid::of(std::uint64_t{0xABCD} + i * 7919), chord_config,
          RnTreeConfig{}, rng.fork(i)));
      // Default capabilities: spread over [1, 4].
      hosts.back()->caps = Caps{1.0 + static_cast<double>(i % 4), 1.0, 1.0, 0.0};
    }
    wire_chord_instantly();
    for (auto& h : hosts) h->tree().start();
    settle(settle_sec);  // several aggregation periods
  }

  /// Install exact Chord state into the RnHosts (mirrors ChordRing logic).
  void wire_chord_instantly() {
    std::vector<std::size_t> order(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return hosts[a]->chord().id() < hosts[b]->chord().id();
    });
    const std::size_t n = order.size();
    auto peer_at = [&](std::size_t pos) {
      auto& c = hosts[order[pos % n]]->chord();
      return chord::Peer{c.addr(), c.id()};
    };
    auto oracle = [&](Guid key) {
      chord::Peer best = chord::kNoPeer;
      std::uint64_t best_dist = 0;
      for (auto& h : hosts) {
        const std::uint64_t dist = key.clockwise_to(h->chord().id());
        if (!best.valid() || dist < best_dist) {
          best = chord::Peer{h->chord().addr(), h->chord().id()};
          best_dist = dist;
        }
      }
      return best;
    };
    for (std::size_t pos = 0; pos < n; ++pos) {
      auto& node = hosts[order[pos]]->chord();
      std::vector<chord::Peer> succs;
      const std::size_t len =
          std::min(node.config().successor_list_len, n > 1 ? n - 1 : 1);
      for (std::size_t k = 1; k <= len; ++k) succs.push_back(peer_at(pos + k));
      std::array<chord::Peer, chord::ChordNode::kBits> fingers{};
      for (int i = 0; i < chord::ChordNode::kBits; ++i) {
        fingers[static_cast<std::size_t>(i)] =
            oracle(Guid{node.id().value() + (std::uint64_t{1} << i)});
      }
      node.install_state(peer_at(pos + n - 1), std::move(succs), fingers);
    }
  }

  void settle(double seconds) {
    simulator.run_until(simulator.now() + sim::SimTime::seconds(seconds));
  }

  /// Root count and reachability of all nodes by following parents.
  std::size_t root_count() const {
    std::size_t roots = 0;
    for (const auto& h : hosts) roots += h->tree().is_root() ? 1 : 0;
    return roots;
  }

  RnHost* host_by_addr(net::NodeAddr a) {
    for (auto& h : hosts) {
      if (h->addr() == a) return h.get();
    }
    return nullptr;
  }

  struct SearchOutcome {
    std::vector<Candidate> candidates;
    int hops = -1;
    bool completed = false;
  };
  SearchOutcome search_from(std::size_t host, const Query& q,
                            std::uint32_t k) {
    SearchOutcome out;
    hosts[host]->tree().search(q, k, [&](std::vector<Candidate> c, int hops) {
      out.candidates = std::move(c);
      out.hops = hops;
      out.completed = true;
    });
    settle(60);
    return out;
  }
};

TEST(RnTreeStructure, ExactlyOneRoot) {
  Fixture fx;
  fx.build(64);
  EXPECT_EQ(fx.root_count(), 1u);
}

TEST(RnTreeStructure, SingletonIsItsOwnRoot) {
  Fixture fx{2};
  fx.build(1);
  EXPECT_TRUE(fx.hosts[0]->tree().is_root());
  EXPECT_EQ(fx.hosts[0]->tree().child_count(), 0u);
}

TEST(RnTreeStructure, ParentChainsReachRootWithLogHeight) {
  Fixture fx{3};
  fx.build(128);
  // Follow cached parents from every node; all chains must reach the root.
  int max_depth = 0;
  for (auto& h : fx.hosts) {
    int depth = 0;
    RnHost* cursor = h.get();
    std::set<net::NodeAddr> seen;
    while (!cursor->tree().is_root()) {
      ASSERT_TRUE(seen.insert(cursor->addr()).second)
          << "parent cycle at depth " << depth;
      const chord::Peer p = cursor->tree().cached_parent();
      ASSERT_TRUE(p.valid());
      cursor = fx.host_by_addr(p.addr);
      ASSERT_NE(cursor, nullptr);
      ++depth;
      ASSERT_LT(depth, 64);
    }
    max_depth = std::max(max_depth, depth);
  }
  // Expected height O(log N): log2(128) = 7; allow a generous multiple.
  EXPECT_LE(max_depth, 21);
}

TEST(RnTreeStructure, LevelsAreConsistentWithParents) {
  Fixture fx{4};
  fx.build(64);
  for (auto& h : fx.hosts) {
    if (h->tree().is_root()) continue;
    const chord::Peer p = h->tree().cached_parent();
    ASSERT_TRUE(p.valid());
    RnHost* parent = fx.host_by_addr(p.addr);
    ASSERT_NE(parent, nullptr);
    // A parent represents a strictly larger region.
    EXPECT_LT(parent->tree().level(), h->tree().level());
  }
}

TEST(RnTreeAggregation, RootAggregateCoversAllNodes) {
  Fixture fx{5};
  fx.build(48, 60.0);
  RnHost* root = nullptr;
  for (auto& h : fx.hosts) {
    if (h->tree().is_root()) root = h.get();
  }
  ASSERT_NE(root, nullptr);
  const Aggregate agg = root->tree().subtree_aggregate();
  EXPECT_EQ(agg.nodes, 48u);
  // Oracle max capability per resource.
  Caps oracle{};
  for (auto& h : fx.hosts) {
    for (std::size_t r = 0; r < kMaxResources; ++r) {
      oracle[r] = std::max(oracle[r], h->caps[r]);
    }
  }
  for (std::size_t r = 0; r < kMaxResources; ++r) {
    EXPECT_DOUBLE_EQ(agg.max_caps[r], oracle[r]) << "resource " << r;
  }
}

TEST(RnTreeAggregation, MinLoadPropagates) {
  Fixture fx{6};
  fx.build(32, 30.0);
  for (auto& h : fx.hosts) h->load = 10.0;
  fx.hosts[17]->load = 1.5;
  fx.settle(30);
  RnHost* root = nullptr;
  for (auto& h : fx.hosts) {
    if (h->tree().is_root()) root = h.get();
  }
  ASSERT_NE(root, nullptr);
  EXPECT_DOUBLE_EQ(root->tree().subtree_aggregate().min_load, 1.5);
}

TEST(RnTreeSearch, FindsSatisfyingNodeWhenOneExists) {
  Fixture fx{7};
  fx.build(64);
  // Exactly one node has capability 9 in resource 0.
  fx.hosts[23]->caps[0] = 9.0;
  fx.settle(60);  // aggregates must refresh up the whole tree
  Query q;
  q.constrained[0] = true;
  q.min[0] = 8.5;
  const auto res = fx.search_from(0, q, 1);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.candidates.size(), 1u);
  EXPECT_EQ(res.candidates[0].peer.addr, fx.hosts[23]->addr());
  EXPECT_GE(res.hops, 1);
}

TEST(RnTreeSearch, UnconstrainedQueryFindsAnyNodeFast) {
  Fixture fx{8};
  fx.build(64);
  const Query q;  // no constraints: every node qualifies
  const auto res = fx.search_from(5, q, 1);
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.candidates.size(), 1u);
  // The initiator itself qualifies: zero hops.
  EXPECT_EQ(res.candidates[0].peer.addr, fx.hosts[5]->addr());
  EXPECT_EQ(res.hops, 0);
}

TEST(RnTreeSearch, ExtendedSearchCollectsKCandidates) {
  Fixture fx{9};
  fx.build(64);
  // Eight nodes have the rare capability.
  for (std::size_t i = 0; i < 8; ++i) fx.hosts[i * 8]->caps[1] = 7.0;
  fx.settle(60);
  Query q;
  q.constrained[1] = true;
  q.min[1] = 6.0;
  const auto res = fx.search_from(3, q, 4);
  ASSERT_TRUE(res.completed);
  EXPECT_GE(res.candidates.size(), 4u);
  for (const auto& c : res.candidates) {
    RnHost* h = fx.host_by_addr(c.peer.addr);
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->caps[1], 6.0);  // every candidate actually satisfies
  }
}

TEST(RnTreeSearch, ImpossibleQueryReturnsEmpty) {
  Fixture fx{10};
  fx.build(32);
  Query q;
  q.constrained[0] = true;
  q.min[0] = 1e9;  // nobody has this
  const auto res = fx.search_from(2, q, 1);
  ASSERT_TRUE(res.completed);
  EXPECT_TRUE(res.candidates.empty());
}

TEST(RnTreeSearch, CandidatesCarryLoad) {
  Fixture fx{11};
  fx.build(16);
  for (auto& h : fx.hosts) h->load = 3.25;
  const Query q;
  const auto res = fx.search_from(0, q, 1);
  ASSERT_TRUE(res.completed);
  ASSERT_FALSE(res.candidates.empty());
  EXPECT_DOUBLE_EQ(res.candidates[0].load, 3.25);
}

TEST(RnTreeSearch, SearchSurvivesNodeFailures) {
  Fixture fx{12};
  fx.build(48);
  fx.hosts[30]->caps[2] = 5.0;
  fx.settle(60);
  // Crash a handful of nodes (none of them the target or initiator).
  for (std::size_t i : {7u, 19u, 41u}) {
    fx.net.set_alive(fx.hosts[i]->addr(), false);
    fx.hosts[i]->tree().stop();
    fx.hosts[i]->chord().crash();
  }
  Query q;
  q.constrained[2] = true;
  q.min[2] = 4.0;
  const auto res = fx.search_from(0, q, 1);
  ASSERT_TRUE(res.completed);
  // Either found (normal) or empty after the tree routed around the dead
  // nodes; it must not hang. Finding it is expected most of the time.
  if (!res.candidates.empty()) {
    EXPECT_EQ(res.candidates[0].peer.addr, fx.hosts[30]->addr());
  }
}

TEST(RnTreeQuery, ConstraintAlgebra) {
  Query q;
  q.constrained[0] = true;
  q.min[0] = 2.0;
  q.constrained[2] = true;
  q.min[2] = 5.0;
  EXPECT_EQ(q.constraint_count(), 2u);
  EXPECT_TRUE(q.satisfied_by(Caps{2.0, 0.0, 5.0, 0.0}));
  EXPECT_FALSE(q.satisfied_by(Caps{1.9, 9.0, 9.0, 9.0}));
  EXPECT_FALSE(q.satisfied_by(Caps{9.0, 9.0, 4.9, 9.0}));

  Aggregate agg;
  agg.max_caps = Caps{3.0, 0.0, 6.0, 0.0};
  agg.nodes = 5;
  EXPECT_TRUE(q.possibly_satisfied_by(agg));
  agg.nodes = 0;
  EXPECT_FALSE(q.possibly_satisfied_by(agg));
}

TEST(RnTreeAggregateUnit, MergeTakesMaxAndMin) {
  Aggregate a;
  a.max_caps = Caps{1.0, 5.0, 0.0, 0.0};
  a.nodes = 2;
  a.min_load = 3.0;
  Aggregate b;
  b.max_caps = Caps{4.0, 2.0, 0.0, 0.0};
  b.nodes = 3;
  b.min_load = 1.0;
  a.merge(b);
  EXPECT_EQ(a.nodes, 5u);
  EXPECT_DOUBLE_EQ(a.max_caps[0], 4.0);
  EXPECT_DOUBLE_EQ(a.max_caps[1], 5.0);
  EXPECT_DOUBLE_EQ(a.min_load, 1.0);
  // Merging an empty aggregate changes nothing.
  a.merge(Aggregate{});
  EXPECT_EQ(a.nodes, 5u);
}

// Property: single-root and bounded height across sizes.
class RnTreeSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RnTreeSizeSweep, OneRootBoundedHeight) {
  Fixture fx{GetParam() * 13 + 1};
  fx.build(GetParam());
  EXPECT_EQ(fx.root_count(), 1u);
  for (auto& h : fx.hosts) {
    int depth = 0;
    RnHost* cursor = h.get();
    while (!cursor->tree().is_root() && depth < 64) {
      const chord::Peer p = cursor->tree().cached_parent();
      ASSERT_TRUE(p.valid());
      cursor = fx.host_by_addr(p.addr);
      ASSERT_NE(cursor, nullptr);
      ++depth;
    }
    EXPECT_LT(depth, 40);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RnTreeSizeSweep,
                         ::testing::Values(2, 4, 9, 17, 33, 65, 200));

}  // namespace
}  // namespace pgrid::rntree
