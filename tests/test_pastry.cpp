// Pastry DHT: digit/prefix arithmetic, instant wiring invariants, lookup
// correctness vs the numerically-closest oracle, O(log_16 N) hop counts,
// join protocol, and leaf-set failure repair.

#include <gtest/gtest.h>

#include <set>

#include "net/network.h"
#include "pastry/mesh.h"
#include "sim/simulator.h"

namespace pgrid::pastry {
namespace {

TEST(PastryMath, DigitsAndPrefixes) {
  const std::uint64_t id = 0xABCDEF0123456789ULL;
  EXPECT_EQ(digit_at(id, 0), 0xA);
  EXPECT_EQ(digit_at(id, 1), 0xB);
  EXPECT_EQ(digit_at(id, 15), 0x9);
  EXPECT_EQ(shared_prefix(id, id), kDigits);
  EXPECT_EQ(shared_prefix(0xABCDEF0123456789ULL, 0xABCDEF0123456780ULL), 15);
  EXPECT_EQ(shared_prefix(0xABCDEF0123456789ULL, 0x0BCDEF0123456789ULL), 0);
}

TEST(PastryMath, CircularDistanceAndCloserTo) {
  EXPECT_EQ(circular_distance(10, 3), 7u);
  EXPECT_EQ(circular_distance(3, 10), 7u);
  // Wrap: distance from near-max to near-zero is short.
  EXPECT_EQ(circular_distance(~std::uint64_t{0} - 1, 2), 4u);
  EXPECT_TRUE(closer_to(100, 99, 110));
  EXPECT_FALSE(closer_to(100, 110, 99));
  // Tie: the smaller id wins (95 and 105 both at distance 5 from 100).
  EXPECT_TRUE(closer_to(100, 95, 105));
  EXPECT_FALSE(closer_to(100, 105, 95));
}

struct Fixture {
  explicit Fixture(std::uint64_t seed = 1, PastryConfig config = PastryConfig{})
      : net(simulator, Rng{seed},
            net::LatencyModel{sim::SimTime::millis(20),
                              sim::SimTime::millis(80)}),
        mesh(net, config, Rng{seed + 1}) {}

  sim::Simulator simulator;
  net::Network net;
  PastryMesh mesh;

  void build(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      mesh.add_host(Guid::of(std::uint64_t{0xDEC0DE} + i * 7919));
    }
    mesh.wire_instantly();
  }

  struct Result {
    Peer root;
    int hops = -1;
    bool completed = false;
  };
  Result lookup_from(std::size_t host, Guid key) {
    Result out;
    mesh.host(host).node().lookup(key, [&](Peer r, int h) {
      out.root = r;
      out.hops = h;
      out.completed = true;
    });
    simulator.run_until(simulator.now() + sim::SimTime::seconds(120));
    return out;
  }

  void settle(double seconds) {
    simulator.run_until(simulator.now() + sim::SimTime::seconds(seconds));
  }
};

TEST(PastryWiring, LeafSetsAreTheClosestNodes) {
  Fixture fx;
  fx.build(32);
  // Collect all ids, then verify each node's leaf set matches the sorted
  // neighborhood.
  std::vector<Guid> ids;
  for (std::size_t i = 0; i < 32; ++i) {
    ids.push_back(fx.mesh.host(i).node().id());
  }
  for (std::size_t i = 0; i < 32; ++i) {
    const PastryNode& node = fx.mesh.host(i).node();
    const auto leaves = node.leaf_set();
    EXPECT_EQ(leaves.size(), 2 * node.config().leaf_half);
    // The nearest clockwise node must be a leaf.
    Guid nearest = node.id();
    std::uint64_t best = ~std::uint64_t{0};
    for (Guid other : ids) {
      if (other == node.id()) continue;
      if (node.id().clockwise_to(other) < best) {
        best = node.id().clockwise_to(other);
        nearest = other;
      }
    }
    bool found = false;
    for (const Peer& p : leaves) found |= (p.id == nearest);
    EXPECT_TRUE(found) << i;
  }
}

TEST(PastryLookup, MatchesOracleForRandomKeys) {
  Fixture fx{3};
  fx.build(100);
  Rng rng{9};
  for (int t = 0; t < 60; ++t) {
    const Guid key{rng.next()};
    const auto res = fx.lookup_from(rng.index(100), key);
    ASSERT_TRUE(res.completed) << t;
    EXPECT_EQ(res.root.id, fx.mesh.oracle_root(key).id) << key.str();
  }
}

TEST(PastryLookup, OwnKeyResolvesToSelf) {
  Fixture fx{4};
  fx.build(24);
  for (std::size_t i = 0; i < 24; ++i) {
    const auto res = fx.lookup_from((i + 7) % 24, fx.mesh.host(i).node().id());
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.root.addr, fx.mesh.host(i).addr());
  }
}

TEST(PastryLookup, HopsAreLogBase16) {
  Fixture fx{5};
  fx.build(512);
  Rng rng{11};
  double total = 0;
  constexpr int kLookups = 80;
  for (int t = 0; t < kLookups; ++t) {
    const auto res = fx.lookup_from(rng.index(512), Guid{rng.next()});
    ASSERT_TRUE(res.completed);
    total += res.hops;
  }
  // log16(512) ~ 2.25; prefix routing plus a final leaf hop stays small.
  EXPECT_LT(total / kLookups, 4.5);
  EXPECT_GT(total / kLookups, 0.5);
}

TEST(PastryJoin, JoinedNodeBecomesRootForItsKeys) {
  Fixture fx{6};
  fx.build(32);
  auto& joiner = fx.mesh.add_host(Guid::of(std::uint64_t{0x1BADB002}));
  bool ok = false;
  joiner.node().join(fx.mesh.host(3).node().self_peer(),
                     [&](bool r) { ok = r; });
  fx.settle(60);
  ASSERT_TRUE(ok);
  fx.settle(30);  // leaf-set gossip folds the joiner in everywhere relevant
  const auto res = fx.lookup_from(0, joiner.node().id());
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.root.addr, joiner.addr());
  EXPECT_FALSE(joiner.node().leaf_set().empty());
}

TEST(PastryJoin, SequentialJoinsBuildWorkingMesh) {
  Fixture fx{7};
  auto& first = fx.mesh.add_host(Guid::of(std::uint64_t{1}));
  first.node().create();
  for (std::size_t i = 2; i <= 16; ++i) {
    auto& host = fx.mesh.add_host(Guid::of(i));
    bool ok = false;
    host.node().join(first.node().self_peer(), [&](bool r) { ok = r; });
    fx.settle(30);
    ASSERT_TRUE(ok) << i;
  }
  fx.settle(60);
  Rng rng{13};
  for (int t = 0; t < 25; ++t) {
    const Guid key{rng.next()};
    const auto res = fx.lookup_from(rng.index(16), key);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.root.id, fx.mesh.oracle_root(key).id);
  }
}

TEST(PastryFailure, LeafSetRepairsAfterCrashes) {
  Fixture fx{8};
  fx.build(64);
  Rng rng{15};
  for (int k = 0; k < 8; ++k) {
    fx.mesh.crash(1 + rng.index(63));
  }
  fx.settle(60);  // leaf-set exchanges detect and repair
  for (int t = 0; t < 25; ++t) {
    const Guid key{rng.next()};
    const auto res = fx.lookup_from(0, key);
    ASSERT_TRUE(res.completed) << t;
    ASSERT_TRUE(res.root.valid()) << t;
    EXPECT_EQ(res.root.id, fx.mesh.oracle_root(key).id) << t;
  }
}

TEST(PastryFailure, CrashedNodeRejoins) {
  Fixture fx{9};
  fx.build(24);
  const Guid id5 = fx.mesh.host(5).node().id();
  fx.mesh.crash(5);
  fx.settle(60);
  const auto interim = fx.lookup_from(0, id5);
  ASSERT_TRUE(interim.completed);
  EXPECT_NE(interim.root.id, id5);

  fx.mesh.restart(5);
  fx.settle(120);
  const auto after = fx.lookup_from(0, id5);
  ASSERT_TRUE(after.completed);
  EXPECT_EQ(after.root.id, id5);
}

// Property sweep over mesh sizes.
class PastrySizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PastrySizeSweep, LookupsMatchOracle) {
  Fixture fx{GetParam() * 3 + 1};
  fx.build(GetParam());
  Rng rng{GetParam()};
  for (int t = 0; t < 20; ++t) {
    const Guid key{rng.next()};
    const auto res = fx.lookup_from(rng.index(GetParam()), key);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.root.id, fx.mesh.oracle_root(key).id);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PastrySizeSweep,
                         ::testing::Values(2, 3, 5, 9, 17, 40, 128, 300));

}  // namespace
}  // namespace pgrid::pastry
